//! Latency aggregation and the persisted loadgen trajectory.
//!
//! * [`LatencyHistogram`] — re-exported from [`crate::telemetry::hist`],
//!   where the HDR-style log-linear histogram now lives so the server's
//!   metrics registry and this client-side aggregation share one bucket
//!   layout (and one `merge`).
//! * [`Summary`] — one run boiled down: achieved-vs-offered rate,
//!   Busy/error/deadline shares, the latency percentiles, and the
//!   per-mix-entry breakdown ([`EntrySummary`]).
//! * [`LoadgenRecord`] / history helpers — the append-only
//!   `results/loadgen_history.json` rows (method × config × timestamp),
//!   the `loadgen report` trajectory table, and the CI p99 gate.

pub use crate::telemetry::hist::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How one issued request ended, as the driver saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The exchange completed (all cells delivered).
    Ok,
    /// The server answered `Busy` (admission queue full or deadline
    /// expired in queue).
    Busy,
    /// A transport or protocol error (connection lost, undecodable
    /// frame, per-cell evaluation failure).
    Error,
}

/// One run summarized: counts, rates, and percentiles.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Arrivals the schedule offered.
    pub offered: usize,
    /// Requests actually issued (== offered unless the run was cut).
    pub sent: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests that failed in transport or evaluation.
    pub errors: usize,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Completed requests per wall-clock second.
    pub achieved_rps: f64,
    /// Latency of *successful* requests, measured from the scheduled
    /// send instant (coordinated-omission-aware: queueing behind a
    /// stalled connection counts against the server).
    pub latency: LatencyHistogram,
    /// The same run sliced per mix entry, in mix order — one histogram
    /// per entry, so a tail regression attributes to the grid /
    /// protocol / cache-temperature combination that caused it.
    pub entries: Vec<EntrySummary>,
}

/// One mix entry's slice of a run: its own counts and latency
/// histogram. The entry histograms merge back into [`Summary::latency`]
/// exactly (same buckets, disjoint samples).
#[derive(Debug, Clone)]
pub struct EntrySummary {
    /// The entry's canonical label ([`super::MixEntry::label`]).
    pub label: String,
    /// Requests issued for this entry.
    pub sent: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests that failed in transport or evaluation.
    pub errors: usize,
    /// Latency of this entry's successful requests.
    pub latency: LatencyHistogram,
}

impl Summary {
    /// `Busy` share of issued requests (`0.0..=1.0`).
    pub fn busy_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.busy as f64 / self.sent as f64
    }

    /// Error share of issued requests (`0.0..=1.0`).
    pub fn error_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.errors as f64 / self.sent as f64
    }
}

/// Schema tag of one history row.
pub const LOADGEN_SCHEMA: &str = "yoco-loadgen/v1";
/// Schema tag of the history envelope.
pub const LOADGEN_HISTORY_SCHEMA: &str = "yoco-loadgen-history/v1";

/// One persisted loadgen run: method × config × outcome × timestamp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenRecord {
    /// Always [`LOADGEN_SCHEMA`].
    pub schema: String,
    /// What was driven: `serve`, `coordinator`, or `cluster` (free-form
    /// label; gate comparisons group by it).
    pub target: String,
    /// Canonical mix label ([`super::Mix::label`]).
    pub mix: String,
    /// Arrival-kind label ([`super::ArrivalKind::label`]).
    pub arrivals: String,
    /// Offered arrival rate (requests/s).
    pub rate: f64,
    /// Configured run duration in milliseconds.
    pub duration_ms: u64,
    /// Driver connections.
    pub connections: usize,
    /// Arrivals the schedule offered.
    pub offered: usize,
    /// Requests issued.
    pub sent: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests failed (transport/evaluation).
    pub errors: usize,
    /// Completed requests per wall-clock second.
    pub achieved_rps: f64,
    /// `Busy` share of issued requests.
    pub busy_rate: f64,
    /// Latency percentiles (successful requests, scheduled-instant
    /// based), milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Maximum latency, milliseconds.
    pub max_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Unix timestamp of the run.
    pub recorded_at_unix_s: u64,
    /// Per-mix-entry breakdown, in mix order. `None` for rows recorded
    /// before the breakdown existed (committed history still parses).
    pub entries: Option<Vec<EntryRecord>>,
}

/// One mix entry's persisted slice of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntryRecord {
    /// The entry's canonical label (e.g. `fig9a:v1=3`).
    pub label: String,
    /// Requests issued for this entry.
    pub sent: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests failed (transport/evaluation).
    pub errors: usize,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
}

/// The configuration labels identifying one loadgen run: everything
/// about a row that was chosen up front rather than measured.
#[derive(Debug, Clone)]
pub struct RunShape {
    /// What was driven (`serve`, `coordinator`, `cluster`, ...).
    pub target: String,
    /// Request mix label.
    pub mix: String,
    /// Arrival schedule label.
    pub arrivals: String,
    /// Offered rate, requests/second.
    pub rate: f64,
    /// Run window.
    pub duration: Duration,
    /// Driver connections.
    pub connections: usize,
}

impl LoadgenRecord {
    /// Builds a row from a run summary plus its configuration labels.
    pub fn from_summary(summary: &Summary, shape: &RunShape, recorded_at_unix_s: u64) -> Self {
        Self {
            schema: LOADGEN_SCHEMA.to_owned(),
            target: shape.target.clone(),
            mix: shape.mix.clone(),
            arrivals: shape.arrivals.clone(),
            rate: shape.rate,
            duration_ms: shape.duration.as_millis() as u64,
            connections: shape.connections,
            offered: summary.offered,
            sent: summary.sent,
            completed: summary.completed,
            busy: summary.busy,
            errors: summary.errors,
            achieved_rps: summary.achieved_rps,
            busy_rate: summary.busy_rate(),
            p50_ms: summary.latency.quantile_ms(0.50),
            p90_ms: summary.latency.quantile_ms(0.90),
            p99_ms: summary.latency.quantile_ms(0.99),
            p999_ms: summary.latency.quantile_ms(0.999),
            max_ms: summary.latency.max_ms(),
            mean_ms: summary.latency.mean_ms(),
            recorded_at_unix_s,
            entries: Some(
                summary
                    .entries
                    .iter()
                    .map(|e| EntryRecord {
                        label: e.label.clone(),
                        sent: e.sent,
                        completed: e.completed,
                        busy: e.busy,
                        errors: e.errors,
                        p50_ms: e.latency.quantile_ms(0.50),
                        p99_ms: e.latency.quantile_ms(0.99),
                        p999_ms: e.latency.quantile_ms(0.999),
                    })
                    .collect(),
            ),
        }
    }

    /// The grouping key for trajectory comparison: two rows with equal
    /// keys measured the same thing and may be gated against each
    /// other.
    pub fn config_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.target, self.mix, self.arrivals, self.rate, self.connections
        )
    }
}

/// The on-disk envelope of `results/loadgen_history.json`.
#[derive(Debug, Serialize, Deserialize)]
pub struct LoadgenHistory {
    /// Always [`LOADGEN_HISTORY_SCHEMA`].
    pub schema: String,
    /// Append-only rows, oldest first.
    pub runs: Vec<LoadgenRecord>,
}

/// Reads a history file; a missing file is an empty history.
pub fn read_history(path: &str) -> Result<Vec<LoadgenRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let history: LoadgenHistory =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a loadgen history: {e}"))?;
    Ok(history.runs)
}

/// Appends one row and rewrites the history file.
pub fn append_history(path: &str, record: LoadgenRecord) -> Result<usize, String> {
    let mut runs = read_history(path)?;
    runs.push(record);
    let history = LoadgenHistory {
        schema: LOADGEN_HISTORY_SCHEMA.to_owned(),
        runs,
    };
    let json = serde_json::to_string_pretty(&history)
        .map_err(|e| format!("cannot serialize loadgen history: {e}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(history.runs.len())
}

/// Renders the `results.md`-style trajectory table: one row per run,
/// oldest first, grouped by nothing — the timestamp column *is* the
/// trajectory.
pub fn render_table(runs: &[LoadgenRecord]) -> String {
    let mut out = String::new();
    out.push_str(
        "| recorded (unix) | target | mix | arrivals | rate | conns | achieved | busy% | p50 ms | p99 ms | p999 ms |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in runs {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.0}/s | {} | {:.1}/s | {:.1} | {:.2} | {:.2} | {:.2} |\n",
            r.recorded_at_unix_s,
            r.target,
            r.mix,
            r.arrivals,
            r.rate,
            r.connections,
            r.achieved_rps,
            r.busy_rate * 100.0,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
        ));
        // Per-mix-entry sub-rows: only worth a line when the mix has
        // more than one entry (a single entry repeats the run row).
        if let Some(entries) = r.entries.as_deref().filter(|e| e.len() > 1) {
            for e in entries {
                let busy_pct = if e.sent > 0 {
                    e.busy as f64 * 100.0 / e.sent as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "| | ↳ {} | | | | | {}/{} ok | {:.1} | {:.2} | {:.2} | {:.2} |\n",
                    e.label, e.completed, e.sent, busy_pct, e.p50_ms, e.p99_ms, e.p999_ms,
                ));
            }
        }
    }
    out
}

/// The CI regression gate over the latest row of each config key:
/// fails when a latest p99 exceeds `factor` × the best earlier p99 for
/// the same key, or `max_p99_ms` when set. Keys with a single row pass
/// (nothing to regress against) unless they break the absolute floor.
/// Returns a human-readable verdict per gated key, or the first
/// failure.
pub fn gate(
    runs: &[LoadgenRecord],
    factor: f64,
    max_p99_ms: Option<f64>,
) -> Result<Vec<String>, String> {
    if runs.is_empty() {
        return Err("loadgen history is empty — nothing to gate".into());
    }
    let mut verdicts = Vec::new();
    let mut seen_keys: Vec<String> = Vec::new();
    for (i, latest) in runs.iter().enumerate() {
        let key = latest.config_key();
        // Gate only each key's latest row.
        if runs[i + 1..].iter().any(|r| r.config_key() == key) {
            continue;
        }
        if seen_keys.contains(&key) {
            continue;
        }
        seen_keys.push(key.clone());
        if let Some(floor) = max_p99_ms {
            if latest.p99_ms > floor {
                return Err(format!(
                    "{key}: p99 {:.2} ms exceeds the absolute floor {floor:.2} ms",
                    latest.p99_ms
                ));
            }
        }
        let best_prior = runs[..i]
            .iter()
            .filter(|r| r.config_key() == key)
            .map(|r| r.p99_ms)
            .fold(f64::INFINITY, f64::min);
        if best_prior.is_finite() {
            let limit = best_prior * factor;
            if latest.p99_ms > limit {
                return Err(format!(
                    "{key}: p99 regressed to {:.2} ms (best prior {:.2} ms, limit {:.2} ms = \
                     {factor}x)",
                    latest.p99_ms, best_prior, limit
                ));
            }
            verdicts.push(format!(
                "{key}: p99 {:.2} ms within {factor}x of best prior {:.2} ms",
                latest.p99_ms, best_prior
            ));
        } else {
            verdicts.push(format!(
                "{key}: p99 {:.2} ms (first row for this config)",
                latest.p99_ms
            ));
        }
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(target: &str, p99: f64, at: u64) -> LoadgenRecord {
        LoadgenRecord {
            schema: LOADGEN_SCHEMA.into(),
            target: target.into(),
            mix: "fig9a".into(),
            arrivals: "fixed".into(),
            rate: 100.0,
            duration_ms: 1000,
            connections: 4,
            offered: 100,
            sent: 100,
            completed: 100,
            busy: 0,
            errors: 0,
            achieved_rps: 99.0,
            busy_rate: 0.0,
            p50_ms: p99 / 2.0,
            p90_ms: p99 / 1.5,
            p99_ms: p99,
            p999_ms: p99 * 1.2,
            max_ms: p99 * 1.5,
            mean_ms: p99 / 2.0,
            recorded_at_unix_s: at,
            entries: None,
        }
    }

    #[test]
    fn gate_passes_within_factor_and_rejects_regressions() {
        let runs = vec![row("serve", 2.0, 1), row("serve", 3.0, 2)];
        assert!(gate(&runs, 2.0, None).is_ok(), "1.5x within a 2x factor");
        let runs = vec![row("serve", 2.0, 1), row("serve", 5.0, 2)];
        let err = gate(&runs, 2.0, None).expect_err("2.5x beyond a 2x factor");
        assert!(err.contains("regressed"), "{err}");
        // Only the latest row per key is gated: a past spike that later
        // recovered passes.
        let runs = vec![
            row("serve", 2.0, 1),
            row("serve", 9.0, 2),
            row("serve", 2.1, 3),
        ];
        assert!(gate(&runs, 2.0, None).is_ok());
        // Distinct targets gate independently.
        let runs = vec![row("serve", 2.0, 1), row("cluster", 50.0, 2)];
        assert!(gate(&runs, 2.0, None).is_ok());
        // The absolute floor applies even to first rows.
        let err = gate(&[row("serve", 30.0, 1)], 2.0, Some(10.0)).expect_err("absolute floor");
        assert!(err.contains("absolute floor"), "{err}");
        assert!(gate(&[], 2.0, None).is_err(), "empty history fails loudly");
    }

    #[test]
    fn history_round_trips_and_renders() {
        let dir = std::env::temp_dir().join(format!("loadgen-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        let path = path.to_str().unwrap();
        assert_eq!(read_history(path).unwrap().len(), 0);
        assert_eq!(append_history(path, row("serve", 2.0, 1)).unwrap(), 1);
        assert_eq!(append_history(path, row("cluster", 4.0, 2)).unwrap(), 2);
        let runs = read_history(path).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].target, "serve");
        let table = render_table(&runs);
        assert!(table.contains("| serve |") && table.contains("| cluster |"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn multi_entry_mixes_render_per_entry_sub_rows() {
        let entry = |label: &str, sent: usize, p99: f64| EntryRecord {
            label: label.into(),
            sent,
            completed: sent,
            busy: 0,
            errors: 0,
            p50_ms: p99 / 2.0,
            p99_ms: p99,
            p999_ms: p99 * 1.1,
        };
        let mut run = row("serve", 2.0, 1);
        run.mix = "fig9a=9,fig9a:v1=1".into();
        run.entries = Some(vec![entry("fig9a=9", 90, 1.8), entry("fig9a:v1", 10, 4.2)]);
        let table = render_table(std::slice::from_ref(&run));
        assert!(table.contains("| | ↳ fig9a=9 |"), "{table}");
        assert!(table.contains("| | ↳ fig9a:v1 |"), "{table}");
        assert!(table.contains("90/90 ok"), "{table}");

        // A single-entry mix keeps the table to one row per run.
        run.entries = Some(vec![entry("fig9a", 100, 2.0)]);
        let table = render_table(std::slice::from_ref(&run));
        assert!(!table.contains('↳'), "{table}");

        // Legacy rows (no `entries` key at all) still parse.
        let serde_json::Value::Object(full) = serde_json::to_value(&row("serve", 2.0, 1)) else {
            panic!("a record serializes as an object");
        };
        let mut legacy = serde_json::Map::new();
        for (key, value) in full.iter().filter(|(k, _)| k.as_str() != "entries") {
            legacy.insert(key.clone(), value.clone());
        }
        let back: LoadgenRecord =
            serde_json::from_value(&serde_json::Value::Object(legacy)).unwrap();
        assert!(back.entries.is_none());
    }
}
