//! Latency aggregation and the persisted loadgen trajectory.
//!
//! * [`LatencyHistogram`] — an HDR-style log-linear histogram over
//!   microseconds: exact below 64 µs, then 64 linear sub-buckets per
//!   power of two (≤ ~1.6% relative error) up to `u64::MAX`. Constant
//!   memory regardless of sample count, so a long run costs nothing to
//!   aggregate.
//! * [`Summary`] — one run boiled down: achieved-vs-offered rate,
//!   Busy/error/deadline shares, and the latency percentiles.
//! * [`LoadgenRecord`] / history helpers — the append-only
//!   `results/loadgen_history.json` rows (method × config × timestamp),
//!   the `loadgen report` trajectory table, and the CI p99 gate.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Sub-bucket resolution: 2^6 = 64 linear buckets per octave.
const SUB_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// An HDR-style log-linear latency histogram over microsecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_us: u64,
    sum_us: u128,
}

/// Bucket index of a microsecond value: identity below [`SUB_BUCKETS`],
/// then `(octave, 64 linear sub-buckets)`.
fn bucket_index(us: u64) -> usize {
    if us < SUB_BUCKETS {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as u64;
    let sub = (us >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
    (octave * SUB_BUCKETS + sub) as usize
}

/// Representative (upper-edge) microsecond value of a bucket index —
/// the inverse of [`bucket_index`] up to sub-bucket resolution.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    ((SUB_BUCKETS + sub + 1) << (octave - 1)) - 1
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        // 64 octaves cover the full u64 µs range (~584k years).
        Self {
            counts: vec![0; (64 * SUB_BUCKETS) as usize],
            total: 0,
            max_us: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
        self.sum_us += u128::from(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The exact maximum recorded value, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1e3
    }

    /// The exact mean of recorded values, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.sum_us as f64 / self.total as f64) / 1e3
    }

    /// The value at quantile `q` (`0.0..=1.0`), in milliseconds —
    /// bucket-upper-edge resolution (≤ ~1.6% high). Returns 0 for an
    /// empty histogram.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The true max beats the bucket edge for the tail.
                return (bucket_value(index).min(self.max_us)) as f64 / 1e3;
            }
        }
        self.max_us as f64 / 1e3
    }
}

/// How one issued request ended, as the driver saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The exchange completed (all cells delivered).
    Ok,
    /// The server answered `Busy` (admission queue full or deadline
    /// expired in queue).
    Busy,
    /// A transport or protocol error (connection lost, undecodable
    /// frame, per-cell evaluation failure).
    Error,
}

/// One run summarized: counts, rates, and percentiles.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Arrivals the schedule offered.
    pub offered: usize,
    /// Requests actually issued (== offered unless the run was cut).
    pub sent: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests that failed in transport or evaluation.
    pub errors: usize,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Completed requests per wall-clock second.
    pub achieved_rps: f64,
    /// Latency of *successful* requests, measured from the scheduled
    /// send instant (coordinated-omission-aware: queueing behind a
    /// stalled connection counts against the server).
    pub latency: LatencyHistogram,
}

impl Summary {
    /// `Busy` share of issued requests (`0.0..=1.0`).
    pub fn busy_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.busy as f64 / self.sent as f64
    }

    /// Error share of issued requests (`0.0..=1.0`).
    pub fn error_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.errors as f64 / self.sent as f64
    }
}

/// Schema tag of one history row.
pub const LOADGEN_SCHEMA: &str = "yoco-loadgen/v1";
/// Schema tag of the history envelope.
pub const LOADGEN_HISTORY_SCHEMA: &str = "yoco-loadgen-history/v1";

/// One persisted loadgen run: method × config × outcome × timestamp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenRecord {
    /// Always [`LOADGEN_SCHEMA`].
    pub schema: String,
    /// What was driven: `serve`, `coordinator`, or `cluster` (free-form
    /// label; gate comparisons group by it).
    pub target: String,
    /// Canonical mix label ([`super::Mix::label`]).
    pub mix: String,
    /// Arrival-kind label ([`super::ArrivalKind::label`]).
    pub arrivals: String,
    /// Offered arrival rate (requests/s).
    pub rate: f64,
    /// Configured run duration in milliseconds.
    pub duration_ms: u64,
    /// Driver connections.
    pub connections: usize,
    /// Arrivals the schedule offered.
    pub offered: usize,
    /// Requests issued.
    pub sent: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests answered `Busy`.
    pub busy: usize,
    /// Requests failed (transport/evaluation).
    pub errors: usize,
    /// Completed requests per wall-clock second.
    pub achieved_rps: f64,
    /// `Busy` share of issued requests.
    pub busy_rate: f64,
    /// Latency percentiles (successful requests, scheduled-instant
    /// based), milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Maximum latency, milliseconds.
    pub max_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Unix timestamp of the run.
    pub recorded_at_unix_s: u64,
}

/// The configuration labels identifying one loadgen run: everything
/// about a row that was chosen up front rather than measured.
#[derive(Debug, Clone)]
pub struct RunShape {
    /// What was driven (`serve`, `coordinator`, `cluster`, ...).
    pub target: String,
    /// Request mix label.
    pub mix: String,
    /// Arrival schedule label.
    pub arrivals: String,
    /// Offered rate, requests/second.
    pub rate: f64,
    /// Run window.
    pub duration: Duration,
    /// Driver connections.
    pub connections: usize,
}

impl LoadgenRecord {
    /// Builds a row from a run summary plus its configuration labels.
    pub fn from_summary(summary: &Summary, shape: &RunShape, recorded_at_unix_s: u64) -> Self {
        Self {
            schema: LOADGEN_SCHEMA.to_owned(),
            target: shape.target.clone(),
            mix: shape.mix.clone(),
            arrivals: shape.arrivals.clone(),
            rate: shape.rate,
            duration_ms: shape.duration.as_millis() as u64,
            connections: shape.connections,
            offered: summary.offered,
            sent: summary.sent,
            completed: summary.completed,
            busy: summary.busy,
            errors: summary.errors,
            achieved_rps: summary.achieved_rps,
            busy_rate: summary.busy_rate(),
            p50_ms: summary.latency.quantile_ms(0.50),
            p90_ms: summary.latency.quantile_ms(0.90),
            p99_ms: summary.latency.quantile_ms(0.99),
            p999_ms: summary.latency.quantile_ms(0.999),
            max_ms: summary.latency.max_ms(),
            mean_ms: summary.latency.mean_ms(),
            recorded_at_unix_s,
        }
    }

    /// The grouping key for trajectory comparison: two rows with equal
    /// keys measured the same thing and may be gated against each
    /// other.
    pub fn config_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.target, self.mix, self.arrivals, self.rate, self.connections
        )
    }
}

/// The on-disk envelope of `results/loadgen_history.json`.
#[derive(Debug, Serialize, Deserialize)]
pub struct LoadgenHistory {
    /// Always [`LOADGEN_HISTORY_SCHEMA`].
    pub schema: String,
    /// Append-only rows, oldest first.
    pub runs: Vec<LoadgenRecord>,
}

/// Reads a history file; a missing file is an empty history.
pub fn read_history(path: &str) -> Result<Vec<LoadgenRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let history: LoadgenHistory =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a loadgen history: {e}"))?;
    Ok(history.runs)
}

/// Appends one row and rewrites the history file.
pub fn append_history(path: &str, record: LoadgenRecord) -> Result<usize, String> {
    let mut runs = read_history(path)?;
    runs.push(record);
    let history = LoadgenHistory {
        schema: LOADGEN_HISTORY_SCHEMA.to_owned(),
        runs,
    };
    let json = serde_json::to_string_pretty(&history)
        .map_err(|e| format!("cannot serialize loadgen history: {e}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(history.runs.len())
}

/// Renders the `results.md`-style trajectory table: one row per run,
/// oldest first, grouped by nothing — the timestamp column *is* the
/// trajectory.
pub fn render_table(runs: &[LoadgenRecord]) -> String {
    let mut out = String::new();
    out.push_str(
        "| recorded (unix) | target | mix | arrivals | rate | conns | achieved | busy% | p50 ms | p99 ms | p999 ms |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in runs {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.0}/s | {} | {:.1}/s | {:.1} | {:.2} | {:.2} | {:.2} |\n",
            r.recorded_at_unix_s,
            r.target,
            r.mix,
            r.arrivals,
            r.rate,
            r.connections,
            r.achieved_rps,
            r.busy_rate * 100.0,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
        ));
    }
    out
}

/// The CI regression gate over the latest row of each config key:
/// fails when a latest p99 exceeds `factor` × the best earlier p99 for
/// the same key, or `max_p99_ms` when set. Keys with a single row pass
/// (nothing to regress against) unless they break the absolute floor.
/// Returns a human-readable verdict per gated key, or the first
/// failure.
pub fn gate(
    runs: &[LoadgenRecord],
    factor: f64,
    max_p99_ms: Option<f64>,
) -> Result<Vec<String>, String> {
    if runs.is_empty() {
        return Err("loadgen history is empty — nothing to gate".into());
    }
    let mut verdicts = Vec::new();
    let mut seen_keys: Vec<String> = Vec::new();
    for (i, latest) in runs.iter().enumerate() {
        let key = latest.config_key();
        // Gate only each key's latest row.
        if runs[i + 1..].iter().any(|r| r.config_key() == key) {
            continue;
        }
        if seen_keys.contains(&key) {
            continue;
        }
        seen_keys.push(key.clone());
        if let Some(floor) = max_p99_ms {
            if latest.p99_ms > floor {
                return Err(format!(
                    "{key}: p99 {:.2} ms exceeds the absolute floor {floor:.2} ms",
                    latest.p99_ms
                ));
            }
        }
        let best_prior = runs[..i]
            .iter()
            .filter(|r| r.config_key() == key)
            .map(|r| r.p99_ms)
            .fold(f64::INFINITY, f64::min);
        if best_prior.is_finite() {
            let limit = best_prior * factor;
            if latest.p99_ms > limit {
                return Err(format!(
                    "{key}: p99 regressed to {:.2} ms (best prior {:.2} ms, limit {:.2} ms = \
                     {factor}x)",
                    latest.p99_ms, best_prior, limit
                ));
            }
            verdicts.push(format!(
                "{key}: p99 {:.2} ms within {factor}x of best prior {:.2} ms",
                latest.p99_ms, best_prior
            ));
        } else {
            verdicts.push(format!(
                "{key}: p99 {:.2} ms (first row for this config)",
                latest.p99_ms
            ));
        }
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_is_within_one_sub_bucket() {
        for us in [
            0u64,
            1,
            63,
            64,
            65,
            100,
            1_000,
            65_535,
            1_000_000,
            123_456_789,
        ] {
            let back = bucket_value(bucket_index(us));
            assert!(back >= us, "bucket edge below the value: {us} -> {back}");
            let err = (back - us) as f64 / us.max(1) as f64;
            assert!(err <= 0.016, "relative error {err} too large for {us}");
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles_on_a_uniform_ramp() {
        let mut h = LatencyHistogram::default();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10_000);
        // Exact p50 is 5.0 ms; bucket resolution allows ~1.6% upward.
        let p50 = h.quantile_ms(0.50);
        assert!((5.0..5.2).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!((9.9..10.1).contains(&p99), "p99 {p99}");
        assert!((h.mean_ms() - 5.0005).abs() < 1e-3);
        assert_eq!(h.max_ms(), 10.0);
        // The tail quantile never exceeds the recorded max.
        assert!(h.quantile_ms(0.999) <= h.max_ms());
    }

    fn row(target: &str, p99: f64, at: u64) -> LoadgenRecord {
        LoadgenRecord {
            schema: LOADGEN_SCHEMA.into(),
            target: target.into(),
            mix: "fig9a".into(),
            arrivals: "fixed".into(),
            rate: 100.0,
            duration_ms: 1000,
            connections: 4,
            offered: 100,
            sent: 100,
            completed: 100,
            busy: 0,
            errors: 0,
            achieved_rps: 99.0,
            busy_rate: 0.0,
            p50_ms: p99 / 2.0,
            p90_ms: p99 / 1.5,
            p99_ms: p99,
            p999_ms: p99 * 1.2,
            max_ms: p99 * 1.5,
            mean_ms: p99 / 2.0,
            recorded_at_unix_s: at,
        }
    }

    #[test]
    fn gate_passes_within_factor_and_rejects_regressions() {
        let runs = vec![row("serve", 2.0, 1), row("serve", 3.0, 2)];
        assert!(gate(&runs, 2.0, None).is_ok(), "1.5x within a 2x factor");
        let runs = vec![row("serve", 2.0, 1), row("serve", 5.0, 2)];
        let err = gate(&runs, 2.0, None).expect_err("2.5x beyond a 2x factor");
        assert!(err.contains("regressed"), "{err}");
        // Only the latest row per key is gated: a past spike that later
        // recovered passes.
        let runs = vec![
            row("serve", 2.0, 1),
            row("serve", 9.0, 2),
            row("serve", 2.1, 3),
        ];
        assert!(gate(&runs, 2.0, None).is_ok());
        // Distinct targets gate independently.
        let runs = vec![row("serve", 2.0, 1), row("cluster", 50.0, 2)];
        assert!(gate(&runs, 2.0, None).is_ok());
        // The absolute floor applies even to first rows.
        let err = gate(&[row("serve", 30.0, 1)], 2.0, Some(10.0)).expect_err("absolute floor");
        assert!(err.contains("absolute floor"), "{err}");
        assert!(gate(&[], 2.0, None).is_err(), "empty history fails loudly");
    }

    #[test]
    fn history_round_trips_and_renders() {
        let dir = std::env::temp_dir().join(format!("loadgen-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        let path = path.to_str().unwrap();
        assert_eq!(read_history(path).unwrap().len(), 0);
        assert_eq!(append_history(path, row("serve", 2.0, 1)).unwrap(), 1);
        assert_eq!(append_history(path, row("cluster", 4.0, 2)).unwrap(), 2);
        let runs = read_history(path).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].target, "serve");
        let table = render_table(&runs);
        assert!(table.contains("| serve |") && table.contains("| cluster |"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
