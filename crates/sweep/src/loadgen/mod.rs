//! # yoco-loadgen — open-loop load generation for the serve runtime
//!
//! Everything `sweep loadgen` runs on: deterministic arrival schedules
//! ([`arrivals`]), weighted request mixes over named grids
//! ([`mix`]), the open-loop multi-connection driver ([`driver`]), and
//! latency aggregation plus the persisted trajectory history
//! ([`report`]).
//!
//! ## Open loop vs closed loop
//!
//! `sweep client bench` is a **closed loop**: each connection sends the
//! next request only after the previous one returns, so the measured
//! rate is whatever the server sustains and latency under *overload* is
//! invisible — when the server stalls, the bench politely stops
//! offering load (coordinated omission). The loadgen is an **open
//! loop**: the arrival schedule is fixed up front and requests fire at
//! their scheduled instants regardless of completions, with latency
//! measured from the scheduled instant. Overload therefore shows up
//! where it belongs: in the p99/p999 tail and the `Busy` rate, not as a
//! quietly reduced request count.
//!
//! ```no_run
//! use std::time::Duration;
//! use yoco_sweep::loadgen::{arrivals, driver, mix, ArrivalKind, Issuer, TcpIssuer};
//!
//! let duration = Duration::from_secs(10);
//! let plan = arrivals::schedule(ArrivalKind::Poisson, 200.0, duration, 42);
//! let mix = mix::Mix::parse("fig9a=9,fig9a:v1=1").unwrap();
//! let assignment = mix.assign(plan.len(), 42);
//! let issuers: Vec<Box<dyn Issuer>> = (0..8)
//!     .map(|_| {
//!         Box::new(TcpIssuer::connect("127.0.0.1:7177", None).unwrap()) as Box<dyn Issuer>
//!     })
//!     .collect();
//! let summary = driver::run(&plan, &assignment, mix.entries(), issuers, duration);
//! println!("p99 {:.2} ms", summary.latency.quantile_ms(0.99));
//! ```

pub mod arrivals;
pub mod driver;
pub mod mix;
pub mod report;

pub use arrivals::{offered_count, schedule, ArrivalKind};
pub use driver::{run, Issuer, TcpIssuer};
pub use mix::{Mix, MixEntry};
pub use report::{
    append_history, gate, read_history, render_table, EntryRecord, EntrySummary, LatencyHistogram,
    LoadgenHistory, LoadgenRecord, Outcome, RunShape, Summary, LOADGEN_HISTORY_SCHEMA,
    LOADGEN_SCHEMA,
};
