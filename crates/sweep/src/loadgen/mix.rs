//! Weighted request mixes: *what* each scheduled arrival asks for.
//!
//! A mix is a comma-separated list of entries, each a named grid plus
//! optional per-entry protocol and cache-temperature modifiers and an
//! optional integer weight:
//!
//! ```text
//! fig9a                    # one entry, v2 streamed, warm (cached)
//! fig9a=3,fig10:v1=1       # 3:1 fig9a-v2 to fig10-v1
//! fig9a:cold=1,fig9a=9     # 10% forced recomputes in a warm stream
//! ```
//!
//! Modifiers: `:v1` (buffered protocol-v1 exchange; default is `:v2`
//! streaming), `:cold` (send `force`, so the server recomputes and the
//! request exercises the full evaluation path; default `:warm` consults
//! the cache). Weights are relative integers, default 1; each arrival
//! is assigned an entry by a seeded draw, so the realized mix converges
//! to the weights while remaining reproducible per seed.

use crate::grids;
use crate::scenario::Scenario;
use rand::{Rng, SplitMix64};

/// One weighted component of a mix.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// The named grid this entry evaluates.
    pub grid: String,
    /// Buffered protocol-v1 exchange instead of v2 streaming.
    pub v1: bool,
    /// Force recomputation (`force: true`): a cache-cold request.
    pub cold: bool,
    /// Relative weight (≥ 1).
    pub weight: u32,
    /// The resolved scenarios of `grid`.
    pub scenarios: Vec<Scenario>,
}

impl MixEntry {
    /// The canonical per-entry label (`fig9a`, `fig10:v1`,
    /// `fig9a:cold=3`, …) — weights of 1 and default modifiers are
    /// omitted so equal specs collapse to equal labels. Public: the
    /// per-entry latency breakdown keys its rows by this label.
    pub fn label(&self) -> String {
        let mut s = self.grid.clone();
        if self.v1 {
            s.push_str(":v1");
        }
        if self.cold {
            s.push_str(":cold");
        }
        if self.weight != 1 {
            s.push_str(&format!("={}", self.weight));
        }
        s
    }
}

/// A parsed, grid-resolved request mix.
#[derive(Debug, Clone)]
pub struct Mix {
    entries: Vec<MixEntry>,
}

impl Mix {
    /// Parses and resolves a mix spec (see the module docs for the
    /// grammar). Every grid is resolved eagerly so a typo fails the
    /// run before any load is offered.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (head, weight) = match part.split_once('=') {
                Some((head, w)) => {
                    let weight: u32 = w
                        .parse()
                        .ok()
                        .filter(|w| *w >= 1)
                        .ok_or_else(|| format!("mix entry `{part}`: weight must be ≥ 1"))?;
                    (head, weight)
                }
                None => (part, 1),
            };
            let mut segments = head.split(':');
            let grid = segments.next().unwrap_or_default().to_owned();
            let (mut v1, mut cold) = (false, false);
            for modifier in segments {
                match modifier {
                    "v1" => v1 = true,
                    "v2" => v1 = false,
                    "cold" => cold = true,
                    "warm" => cold = false,
                    other => {
                        return Err(format!(
                            "mix entry `{part}`: unknown modifier `:{other}` \
                             (expected :v1, :v2, :warm, or :cold)"
                        ));
                    }
                }
            }
            let scenarios = grids::resolve(&grid).map_err(|e| e.to_string())?;
            entries.push(MixEntry {
                grid,
                v1,
                cold,
                weight,
                scenarios,
            });
        }
        if entries.is_empty() {
            return Err("empty mix spec".into());
        }
        Ok(Self { entries })
    }

    /// The mix's components.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// The canonical label persisted into history rows, stable across
    /// re-parses of the same spec.
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(MixEntry::label)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Assigns an entry index to each of `n` arrivals by seeded
    /// weighted draw: reproducible per seed, converging to the weights.
    pub fn assign(&self, n: usize, seed: u64) -> Vec<usize> {
        let total: u64 = self.entries.iter().map(|e| u64::from(e.weight)).sum();
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let mut draw = rng.gen_range(0..total);
                for (idx, entry) in self.entries.iter().enumerate() {
                    let w = u64::from(entry.weight);
                    if draw < w {
                        return idx;
                    }
                    draw -= w;
                }
                self.entries.len() - 1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_modifiers_weights_and_round_trips_the_label() {
        let mix = Mix::parse("fig9a=3, fig10:v1 ,fig9a:cold=2").expect("parses");
        assert_eq!(mix.entries().len(), 3);
        assert_eq!(mix.label(), "fig9a=3,fig10:v1,fig9a:cold=2");
        let e = &mix.entries()[0];
        assert!(!e.v1 && !e.cold && e.weight == 3 && e.scenarios.len() == 1);
        let e = &mix.entries()[1];
        assert!(e.v1 && !e.cold && e.weight == 1 && e.scenarios.len() == 5);
        let e = &mix.entries()[2];
        assert!(!e.v1 && e.cold && e.weight == 2);
        // Re-parsing the canonical label is a fixed point.
        assert_eq!(Mix::parse(&mix.label()).unwrap().label(), mix.label());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(Mix::parse("").is_err());
        assert!(Mix::parse("no-such-grid").is_err());
        assert!(Mix::parse("fig9a=0").is_err());
        assert!(Mix::parse("fig9a:v3").is_err());
    }

    #[test]
    fn assignment_is_deterministic_and_tracks_weights() {
        let mix = Mix::parse("fig9a=9,fig10:v1=1").expect("parses");
        let a = mix.assign(10_000, 42);
        assert_eq!(a, mix.assign(10_000, 42));
        let heavy = a.iter().filter(|i| **i == 0).count();
        // 90% ± a loose statistical margin.
        assert!(
            (8_700..=9_300).contains(&heavy),
            "weighted draw far off: {heavy}/10000"
        );
    }
}
