//! Open-loop arrival schedules: *when* requests fire, decided up front.
//!
//! An open-loop generator commits to a schedule of send instants before
//! the run starts and fires at those instants regardless of how the
//! server is doing. That is the property that makes tail latency
//! honest: a closed loop slows its own arrival rate down whenever the
//! server stalls (coordinated omission), so the stall never shows up in
//! the percentiles. Here the schedule is a plain `Vec<Duration>` of
//! offsets from the run start, produced deterministically from a seed —
//! the same `(kind, rate, duration, seed)` always yields the same
//! instants, so runs are reproducible and proptests can assert
//! statistical properties without flakes.

use rand::{Rng, SplitMix64};
use std::time::Duration;

/// The shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals: one every `1/rate` seconds. The
    /// smoothest possible offered load — a lower bound on queueing.
    Fixed,
    /// Memoryless (Poisson) arrivals: exponential inter-arrival gaps
    /// with mean `1/rate`. The standard model for uncontrolled
    /// aggregate traffic; produces natural short bursts.
    Poisson,
    /// Clustered arrivals: groups of `burst` requests fire at the same
    /// instant, groups spaced so the *total* offered load still equals
    /// `rate`. Stresses admission and queue depth harder than Poisson
    /// at the same average rate.
    Bursty {
        /// Requests per simultaneous group (≥ 1; 1 degenerates to
        /// [`ArrivalKind::Fixed`]).
        burst: usize,
    },
}

impl ArrivalKind {
    /// The label persisted into history rows (`fixed`, `poisson`,
    /// `burst8`, …).
    pub fn label(&self) -> String {
        match self {
            ArrivalKind::Fixed => "fixed".into(),
            ArrivalKind::Poisson => "poisson".into(),
            ArrivalKind::Bursty { burst } => format!("burst{burst}"),
        }
    }

    /// Parses a label back into a kind (the inverse of
    /// [`ArrivalKind::label`], plus `bursty` as an alias for `burst8`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "fixed" => Ok(ArrivalKind::Fixed),
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" => Ok(ArrivalKind::Bursty { burst: 8 }),
            other => match other.strip_prefix("burst").and_then(|n| n.parse().ok()) {
                Some(burst) if burst >= 1 => Ok(ArrivalKind::Bursty { burst }),
                _ => Err(format!(
                    "unknown arrival kind `{other}` (expected fixed, poisson, bursty, or burstN)"
                )),
            },
        }
    }
}

/// How many arrivals a `(rate, duration)` pair offers: `⌊rate·duration⌋`,
/// identical across kinds so schedules are comparable at equal offered
/// load.
pub fn offered_count(rate: f64, duration: Duration) -> usize {
    (rate * duration.as_secs_f64()).floor() as usize
}

/// Builds the schedule: offsets from run start, non-decreasing, all
/// strictly inside `duration`. Every kind offers exactly
/// [`offered_count`] arrivals, so achieved-vs-offered comparisons hold
/// across kinds.
pub fn schedule(kind: ArrivalKind, rate: f64, duration: Duration, seed: u64) -> Vec<Duration> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let n = offered_count(rate, duration);
    match kind {
        ArrivalKind::Fixed => (0..n)
            .map(|i| Duration::from_secs_f64(i as f64 / rate))
            .collect(),
        ArrivalKind::Poisson => {
            let mut rng = SplitMix64::new(seed);
            let mut at = 0.0f64;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                // Inverse-CDF exponential: -ln(1-u)/rate, u ∈ [0, 1).
                let u: f64 = rng.gen();
                at += -(1.0 - u).ln() / rate;
                out.push(Duration::from_secs_f64(at));
            }
            // The count is fixed at the offered load; clamping the tail
            // into the window (rare: the sum of n exponentials
            // overshooting n/rate) keeps "all offsets < duration" an
            // invariant the driver can rely on for its own cutoff.
            let cap = duration.as_secs_f64();
            for d in &mut out {
                if d.as_secs_f64() >= cap {
                    *d = Duration::from_secs_f64(cap * (1.0 - 1e-9));
                }
            }
            out
        }
        ArrivalKind::Bursty { burst } => {
            let burst = burst.max(1);
            // Groups of `burst` at the same instant, groups spaced
            // burst/rate apart: total load over the window is still
            // rate·duration.
            (0..n)
                .map(|i| Duration::from_secs_f64((i / burst) as f64 * burst as f64 / rate))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_evenly_spaced_and_sized() {
        let s = schedule(ArrivalKind::Fixed, 100.0, Duration::from_secs(2), 0);
        assert_eq!(s.len(), 200);
        assert_eq!(s[0], Duration::ZERO);
        let gap = s[1] - s[0];
        for pair in s.windows(2) {
            let d = pair[1] - pair[0];
            assert!((d.as_secs_f64() - gap.as_secs_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_monotone() {
        let a = schedule(ArrivalKind::Poisson, 50.0, Duration::from_secs(4), 7);
        let b = schedule(ArrivalKind::Poisson, 50.0, Duration::from_secs(4), 7);
        let c = schedule(ArrivalKind::Poisson, 50.0, Duration::from_secs(4), 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.windows(2).all(|p| p[0] <= p[1]), "offsets non-decreasing");
        assert!(a.iter().all(|d| *d < Duration::from_secs(4)));
    }

    #[test]
    fn bursty_groups_fire_together_and_burst1_is_fixed() {
        let s = schedule(
            ArrivalKind::Bursty { burst: 4 },
            100.0,
            Duration::from_secs(1),
            0,
        );
        assert_eq!(s.len(), 100);
        for group in s.chunks(4) {
            assert!(group.iter().all(|d| *d == group[0]));
        }
        let b1 = schedule(
            ArrivalKind::Bursty { burst: 1 },
            100.0,
            Duration::from_secs(1),
            0,
        );
        let fixed = schedule(ArrivalKind::Fixed, 100.0, Duration::from_secs(1), 0);
        assert_eq!(b1, fixed);
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            ArrivalKind::Fixed,
            ArrivalKind::Poisson,
            ArrivalKind::Bursty { burst: 8 },
            ArrivalKind::Bursty { burst: 32 },
        ] {
            assert_eq!(ArrivalKind::parse(&kind.label()), Ok(kind));
        }
        assert!(ArrivalKind::parse("nope").is_err());
        assert!(ArrivalKind::parse("burst0").is_err());
    }
}
