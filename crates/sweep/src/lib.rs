//! # yoco-sweep — the scenario-driven experiment engine
//!
//! One execution path for every figure, table, ad-hoc comparison, and
//! service request in the workspace:
//!
//! * [`api`] — **the crate's primary interface**: the [`SweepError`]
//!   error enum, typed [`Metrics`] payloads, the validating
//!   [`ScenarioBuilder`], the versioned [`EvalRequest`]/[`EvalResponse`]
//!   wire format spoken by the `yoco-serve` binary, and [`Shard`]
//!   descriptors for splitting grids across hosts;
//! * [`scenario`] — serde-backed [`Scenario`] descriptors: accelerator
//!   choice, design-point overrides, workload selection, and named
//!   studies, composable into grids ([`grids`], [`figures`]);
//! * [`engine`] — the [`Engine`]: parallel execution over self-scheduling
//!   scoped threads with deterministic, order-independent assembly, and
//!   per-cell completion callbacks ([`Engine::run_with`]) for streaming
//!   frontends;
//! * [`serve`] — the server runtime behind `yoco-serve`: one shared
//!   engine + cache behind an admission [`serve::Gate`]
//!   (`--queue-depth`, adaptive `retry_after_ms` hints), a worker budget
//!   split across in-flight requests, streamed protocol-v2 responses,
//!   warm-response memoization, and the `Status` observability frame;
//! * [`cluster`] — the multi-host shard fan-out coordinator
//!   ([`Coordinator`]): one client request partitioned round-robin over
//!   worker hosts (each a stock `yoco-serve`), streamed `Cell` frames
//!   merged back into one v1/v2 exchange, unfinished shards requeued on
//!   worker loss;
//! * [`client`] — the matching blocking client ([`ServeClient`]), used
//!   by `sweep client`, the cluster coordinator's dispatch path, and the
//!   service-level tests;
//! * [`loadgen`] — open-loop load generation against any of the above:
//!   deterministic Poisson/bursty/fixed arrival schedules, weighted
//!   grid × protocol × cache-temperature mixes, a multi-connection
//!   driver that charges coordinated omission to the tail, and the
//!   p50/p99/p999 + Busy-rate trajectory persisted in
//!   `results/loadgen_history.json`;
//! * [`telemetry`] — server-side observability: the process-wide
//!   metrics [`telemetry::Registry`] (counters, gauges, and the shared
//!   log-linear [`LatencyHistogram`]) exposed through the
//!   gate-bypassing `Metrics` control frame and Prometheus-style text,
//!   plus request-scoped stage tracing (`--trace-dir`) aggregated by
//!   `sweep trace report`;
//! * [`cache`] — a content-addressed result cache under `results/cache/`,
//!   keyed by a stable hash of the scenario plus the evaluator version
//!   ([`hash`]), with age/size garbage collection ([`cache::GcBudget`]);
//! * [`figures`] / [`studies`] — the Fig 1(c)/6–10 / Table I–II
//!   computations, expressed as grids and cacheable study cells;
//! * [`root`] — workspace-root discovery shared with `yoco-bench`'s
//!   output writer.
//!
//! ## Quickstart
//!
//! ```
//! use yoco_sweep::{figures, Engine};
//!
//! // Pure in-memory evaluation (what `yoco_bench::fig8_table()` wraps):
//! let table = figures::fig8_table();
//! assert_eq!(table.rows.len(), 10);
//!
//! // The same grid, explicitly parallel and uncached:
//! let engine = Engine::ephemeral().jobs(4);
//! let (parallel_table, report) = figures::fig8_table_with(&engine).unwrap();
//! assert_eq!(parallel_table, table);
//! assert_eq!(report.cells.len(), 40);
//! ```
//!
//! For request/response evaluation — the path `yoco-serve` exposes over
//! a socket — see the [`api`] module docs.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod engine;
pub mod eval;
pub mod executor;
pub mod figures;
pub mod grids;
pub mod hash;
pub mod loadgen;
pub mod root;
pub mod scenario;
pub mod serve;
pub mod studies;
pub mod telemetry;

pub use api::{
    EvalRequest, EvalResponse, Metrics, ScenarioBuilder, Shard, StatusReport, SweepError,
    API_VERSION,
};
pub use cache::{CacheStats, GcBudget, GcOutcome, ResultCache};
pub use client::{RetryPolicy, ServeClient, StreamOutcome};
pub use cluster::{ClusterConfig, Coordinator};
pub use engine::{CellResult, Engine, SweepReport};
pub use eval::{AttentionMetrics, GemmMetrics};
pub use grids::{DseGrid, GridSpec, DSE_AXES, DSE_GRIDS, DSE_WORKLOADS};
pub use loadgen::{ArrivalKind, LatencyHistogram, LoadgenRecord, Mix};
pub use scenario::{AcceleratorKind, DesignPoint, Scenario, ScenarioKind, StudyId, WorkloadSpec};
pub use serve::{Runtime, ServeConfig};
pub use studies::StudyMetrics;
pub use telemetry::{HistSnapshot, MetricsReport, SpanRecord};
