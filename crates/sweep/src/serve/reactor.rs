//! The event-driven serve core: one reactor thread multiplexing the
//! listener and every client connection over the vendored epoll shim
//! ([`mio`]), with a small worker pool executing request lines against
//! the socket-free [`LineHandler`].
//!
//! A thread-per-connection accept loop caps concurrent connections at
//! "how many stacks can you afford" long before the shared engine is
//! the limit. Here a connection costs two heap buffers:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!                    │  reactor thread (epoll)                    │
//!  accept ──────────▶│  listener ── token 0                       │
//!                    │  waker ───── token 1 (eventfd)             │
//!  readable ────────▶│  conn N ──── read → LineBuf → lines        │
//!                    │                │ dispatch (line, Instant)  │
//!                    │                ▼                           │
//!                    │        job queue (mpsc)                    │
//!                    │                │                           │
//!                    │   workers: handler.handle_line_at(...)     │
//!                    │                │ frames                    │
//!                    │                ▼                           │
//!                    │  OutBuf (bounded) ─ dirty queue ─ waker    │
//!  writable ────────▶│  conn N ──── flush until EAGAIN            │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * **Pipelining** — a client may write any number of request lines
//!   without waiting for responses; the reactor parses them all out of
//!   the shared read buffer and answers each exactly once, **in
//!   request order**. At most one line per connection is in flight at
//!   a time (the rest wait in the connection's queue), because frames
//!   of concurrently-served requests would interleave — a v2 `Cell`
//!   carries no request id, so ordering *is* the framing. Distinct
//!   connections still run fully in parallel.
//! * **Backpressure** — frames are appended to a bounded
//!   per-connection [`OutBuf`]; a partial write keeps the remainder
//!   and arms `WRITABLE` interest (EAGAIN requeues the flush), and a
//!   client that stops reading until the buffer hits its cap is
//!   disconnected instead of holding server memory hostage.
//! * **Deadlines** — each line is stamped with its receipt
//!   [`Instant`]; the admission gate answers `Busy` for requests whose
//!   `deadline_ms` expired while queued, instead of occupying a slot.
//! * **Shutdown** — on a served `Shutdown` the reactor stops
//!   accepting and stops reading, then drains: every dispatched line
//!   finishes and every outbuf flushes (the `Bye` reaches its client)
//!   before the loop exits, bounded by a grace period mirroring the
//!   60 s per-connection write timeout.

use super::{FrameSink, LineHandler, Served};
use crate::api::Response;
use crate::telemetry;
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default bound on one connection's pending response bytes. Generous —
/// a full `fig8` v1 response is tens of kilobytes — but finite: past
/// it the client is deemed a slow reader and disconnected.
pub const DEFAULT_OUTBUF_CAP: usize = 16 * 1024 * 1024;

/// How long a shutdown drain may wait on unflushed outbufs before
/// force-closing them — the reactor's analogue of a per-connection
/// 60 s write timeout.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(60);

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
const FIRST_CONN: usize = 2;

/// Sizing of the reactor: handler workers and the outbuf bound.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Threads executing request lines. More than the admission depth,
    /// so control frames (`Ping`/`Status`) and fast rejections keep
    /// flowing while every slot runs an evaluation.
    pub workers: usize,
    /// Per-connection bound on buffered response bytes; exceeding it
    /// disconnects the (slow-reading) client.
    pub outbuf_cap: usize,
}

impl ReactorConfig {
    /// The sizing for a runtime admitting `queue_depth` evaluations.
    pub fn for_queue_depth(queue_depth: usize) -> Self {
        Self {
            workers: queue_depth.saturating_add(2).clamp(2, 32),
            outbuf_cap: DEFAULT_OUTBUF_CAP,
        }
    }
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self::for_queue_depth(super::DEFAULT_QUEUE_DEPTH)
    }
}

/// An incremental NDJSON line parser over a growing byte buffer:
/// `feed` appends whatever the socket delivered (any framing — bytes
/// may split a line anywhere), `next_line` pops complete lines.
#[derive(Debug, Default)]
pub(crate) struct LineBuf {
    buf: Vec<u8>,
    /// How far the buffer has been scanned for a newline, so repeated
    /// partial reads do not rescan the same prefix.
    scanned: usize,
}

impl LineBuf {
    /// Appends freshly read bytes.
    pub(crate) fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line (newline stripped, CRLF tolerated).
    /// Invalid UTF-8 is replaced rather than fatal — the dispatch
    /// answers such lines as malformed requests.
    pub(crate) fn next_line(&mut self) -> Option<String> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = self.scanned + offset;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                self.scanned = 0;
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Some(String::from_utf8_lossy(&line).into_owned())
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }
}

/// One connection's bounded, partially flushed response bytes.
#[derive(Debug)]
pub(crate) struct OutBuf {
    data: Vec<u8>,
    /// Bytes already written to the socket (a partial write's cursor).
    pos: usize,
    cap: usize,
    overflowed: bool,
    closed: bool,
}

impl OutBuf {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            data: Vec::new(),
            pos: 0,
            cap,
            overflowed: false,
            closed: false,
        }
    }

    /// Pending (unwritten) bytes.
    pub(crate) fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Marks the connection gone: subsequent pushes fail fast so an
    /// in-flight handler aborts its stream instead of buffering into
    /// the void.
    pub(crate) fn close(&mut self) {
        self.closed = true;
        self.data = Vec::new();
        self.pos = 0;
    }

    /// Appends one frame line (newline added). Exceeding the cap
    /// latches `overflowed` — the reactor disconnects the client — and
    /// the push fails so the producing handler stops emitting.
    pub(crate) fn push(&mut self, line: &str) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection closed",
            ));
        }
        if self.overflowed || self.len() + line.len() + 1 > self.cap {
            self.overflowed = true;
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "per-connection output buffer full (slow reader)",
            ));
        }
        // Compact once the flushed prefix dominates, so a long-lived
        // connection does not grow its buffer by its whole history.
        if self.pos > 0 && self.pos >= self.data.len() / 2 {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
        self.data.extend_from_slice(line.as_bytes());
        self.data.push(b'\n');
        Ok(())
    }

    /// Writes as much as the socket accepts. `Ok(true)` means drained,
    /// `Ok(false)` means the socket would block with bytes remaining
    /// (the caller arms `WRITABLE` interest and resumes later).
    pub(crate) fn write_to(&mut self, writer: &mut dyn Write) -> io::Result<bool> {
        while self.pos < self.data.len() {
            match writer.write(&self.data[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.data.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// The cross-thread state of one connection's output side.
#[derive(Debug)]
struct ConnOut {
    buf: Mutex<OutBuf>,
}

/// What reactor and workers share: the wakeup channel back into the
/// poll loop and the queues it drains.
struct Shared {
    waker: Waker,
    /// Connections whose outbuf gained bytes since the last flush.
    dirty: Mutex<Vec<usize>>,
    /// Completed handler calls awaiting reactor bookkeeping.
    done: Mutex<Vec<DoneMsg>>,
}

impl Shared {
    fn mark_dirty(&self, conn: usize) {
        self.dirty.lock().expect("dirty lock").push(conn);
        let _ = self.waker.wake();
    }

    fn push_done(&self, msg: DoneMsg) {
        self.done.lock().expect("done lock").push(msg);
        let _ = self.waker.wake();
    }
}

/// One line for a worker to execute.
struct Job {
    conn: usize,
    line: String,
    received: Instant,
    out: Arc<ConnOut>,
}

/// One finished handler call.
struct DoneMsg {
    conn: usize,
    result: io::Result<Served>,
}

/// The [`FrameSink`] workers hand to the handler: frames serialize
/// into the connection's bounded outbuf, and the reactor is woken to
/// flush. Failures (overflow, closed connection) propagate into the
/// handler so streams abort instead of buffering blindly.
struct ReactorSink {
    conn: usize,
    out: Arc<ConnOut>,
    shared: Arc<Shared>,
}

impl FrameSink for ReactorSink {
    fn send(&mut self, frame: &Response) -> io::Result<()> {
        let line = serde_json::to_string(frame).map_err(|e| io::Error::other(e.to_string()))?;
        self.send_raw(&line)
    }

    fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let depth = {
            let mut out = self.out.buf.lock().expect("outbuf lock");
            out.push(line)?;
            out.len()
        };
        telemetry::global().note_outbuf_depth(depth as u64);
        self.shared.mark_dirty(self.conn);
        Ok(())
    }
}

/// The sink for lines answered on the reactor thread itself
/// ([`LineHandler::try_handle_warm`]): frames append straight to the
/// connection's outbuf with no waker round trip — the event loop
/// flushes every touched connection in the same pass.
struct InlineSink {
    out: Arc<ConnOut>,
}

impl FrameSink for InlineSink {
    fn send(&mut self, frame: &Response) -> io::Result<()> {
        let line = serde_json::to_string(frame).map_err(|e| io::Error::other(e.to_string()))?;
        self.send_raw(&line)
    }

    fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let depth = {
            let mut out = self.out.buf.lock().expect("outbuf lock");
            out.push(line)?;
            out.len()
        };
        telemetry::global().note_outbuf_depth(depth as u64);
        Ok(())
    }
}

/// One registered client connection, owned by the reactor thread.
struct Conn {
    stream: TcpStream,
    peer: String,
    inbuf: LineBuf,
    out: Arc<ConnOut>,
    /// Parsed request lines (with their receipt stamp) waiting behind
    /// the in-flight one. Responses must come back in request order —
    /// a sequential per-connection loop gets that for free, so the
    /// reactor keeps at most ONE line per connection in flight and
    /// queues the rest here; [`Reactor::advance`] drains it.
    queued: VecDeque<(String, Instant)>,
    /// Lines dispatched to workers and not yet reported done (0 or 1).
    pending: usize,
    /// EOF observed (or reads stopped by shutdown); no more dispatch.
    read_closed: bool,
    /// Close once pending work and the outbuf drain (a served
    /// `Shutdown`'s connection stops reading further requests).
    closing: bool,
    /// The current epoll registration, `None` when deregistered.
    registered: Option<(bool, bool)>,
}

impl Conn {
    fn outbuf_is_empty(&self) -> bool {
        self.out.buf.lock().expect("outbuf lock").is_empty()
    }
}

/// Runs the event-driven accept loop until a `Shutdown` request
/// drains it: serve every connection through `handler`, log one line
/// per served request unless `quiet`.
pub fn serve_reactor(
    listener: TcpListener,
    handler: Arc<dyn LineHandler>,
    quiet: bool,
    config: ReactorConfig,
) -> io::Result<()> {
    let poll = Poll::new()?;
    listener.set_nonblocking(true)?;
    let listener_fd = listener.as_raw_fd();
    poll.registry()
        .register(&mut SourceFd(&listener_fd), LISTENER, Interest::READABLE)?;
    let shared = Arc::new(Shared {
        waker: Waker::new(poll.registry(), WAKER)?,
        dirty: Mutex::new(Vec::new()),
        done: Mutex::new(Vec::new()),
    });

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let worker_handles: Vec<_> = (0..config.workers.max(1))
        .map(|n| {
            let rx = Arc::clone(&job_rx);
            let handler = Arc::clone(&handler);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("reactor-worker-{n}"))
                .spawn(move || worker_loop(rx, handler, shared))
                .expect("spawn reactor worker")
        })
        .collect();

    let mut reactor = Reactor {
        poll,
        listener: Some(listener),
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        shared,
        handler,
        job_tx: Some(job_tx),
        outbuf_cap: config.outbuf_cap,
        quiet,
        shutdown: None,
        fd_reserve: std::fs::File::open("/dev/null").ok(),
    };
    let result = reactor.run();

    // Closing the job channel ends the workers once the queue drains
    // (any stragglers write into closed outbufs and fail fast).
    drop(reactor);
    for handle in worker_handles {
        let _ = handle.join();
    }
    result
}

fn worker_loop(
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    handler: Arc<dyn LineHandler>,
    shared: Arc<Shared>,
) {
    loop {
        // Holding the lock across `recv` just parks the other workers
        // on the mutex instead of the channel; handoff order is
        // unchanged and the lock is released with each job.
        let job = match rx.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut sink = ReactorSink {
            conn: job.conn,
            out: Arc::clone(&job.out),
            shared: Arc::clone(&shared),
        };
        let result = handler.handle_line_at(&job.line, job.received, &mut sink);
        shared.push_done(DoneMsg {
            conn: job.conn,
            result,
        });
    }
}

struct Reactor {
    poll: Poll,
    listener: Option<TcpListener>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    shared: Arc<Shared>,
    handler: Arc<dyn LineHandler>,
    job_tx: Option<mpsc::Sender<Job>>,
    outbuf_cap: usize,
    quiet: bool,
    /// When a `Shutdown` was served — the drain deadline's anchor.
    shutdown: Option<Instant>,
    /// One spare descriptor held open so that hitting the process fd
    /// limit (EMFILE/ENFILE) can still be handled: drop the reserve,
    /// accept the pending connection, close it immediately (shedding
    /// the client with a RST instead of leaving it in the backlog
    /// forever), then re-arm the reserve.
    fd_reserve: Option<std::fs::File>,
}

impl Reactor {
    fn run(&mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(1024);
        loop {
            let timeout = self.shutdown.map(|_| Duration::from_millis(25));
            self.poll.poll(&mut events, timeout)?;
            // Time the work of this pass, not the idle poll wait: the
            // loop-iteration histogram answers "how long can one pass
            // starve the event loop", and sleeping isn't starving.
            let pass_started = Instant::now();
            let mut touched: Vec<usize> = Vec::new();
            for event in &events {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => {} // queues are drained below on every pass
                    Token(id) => {
                        if event.is_readable() {
                            self.read_ready(id);
                        }
                        touched.push(id);
                    }
                }
            }
            // Handler completions: bookkeeping, logging, shutdown —
            // then the connection's next queued line, if any.
            let done = std::mem::take(&mut *self.shared.done.lock().expect("done lock"));
            for msg in done {
                touched.push(msg.conn);
                let Some(conn) = self.conns.get_mut(&msg.conn) else {
                    continue; // connection already closed (slow reader, error)
                };
                conn.pending -= 1;
                match msg.result {
                    Ok(served) => {
                        if !self.quiet {
                            println!("[{}] {}", conn.peer, served.label());
                            let _ = io::stdout().flush();
                        }
                        if served == Served::Shutdown {
                            conn.closing = true;
                            self.begin_shutdown();
                            touched = self.conns.keys().copied().collect();
                        }
                    }
                    Err(e) => {
                        eprintln!("warning: connection error: {e}");
                        self.close_conn(msg.conn);
                    }
                }
                self.advance(msg.conn);
            }
            // Fresh response bytes: flush opportunistically.
            touched.extend(std::mem::take(
                &mut *self.shared.dirty.lock().expect("dirty lock"),
            ));
            for id in touched {
                self.refresh(id);
            }
            telemetry::global().observe_loop_iter(pass_started.elapsed());
            if let Some(since) = self.shutdown {
                let drained = self
                    .conns
                    .values()
                    .all(|c| c.pending == 0 && c.queued.is_empty() && c.outbuf_is_empty());
                if drained || since.elapsed() >= SHUTDOWN_GRACE {
                    break;
                }
            }
        }
        for id in self.conns.keys().copied().collect::<Vec<_>>() {
            self.close_conn(id);
        }
        self.job_tx = None;
        Ok(())
    }

    /// Accepts every pending connection (the listener is level-
    /// triggered, but draining the backlog per event is cheaper than
    /// one wakeup per connection under fan-in).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if let Err(e) = self.add_conn(stream, peer.to_string()) {
                        eprintln!("warning: failed to register connection: {e}");
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE (24) / ENFILE (23): the fd table is full, and a
                // level-triggered listener would spin on the same event
                // forever without an fd to accept into. Spend the
                // reserve to accept-and-close the pending connection —
                // the client sees an immediate close and can back off —
                // then re-arm and let epoll re-fire for any backlog.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    telemetry::global().note_fd_shed();
                    self.fd_reserve.take();
                    if let Some(listener) = self.listener.as_ref() {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                eprintln!(
                                    "warning: fd limit reached ({e}); shedding connection \
                                     from {peer}"
                                );
                                drop(stream);
                            }
                            Err(_) => eprintln!("warning: fd limit reached ({e})"),
                        }
                    }
                    self.fd_reserve = std::fs::File::open("/dev/null").ok();
                    return;
                }
                Err(e) => {
                    eprintln!("warning: failed accept: {e}");
                    return;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream, peer: String) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        // One flushed frame per line: with Nagle on, each small write
        // can stall a delayed-ACK interval (~40 ms).
        stream.set_nodelay(true)?;
        let id = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        self.poll
            .registry()
            .register(&mut SourceFd(&fd), Token(id), Interest::READABLE)?;
        self.conns.insert(
            id,
            Conn {
                stream,
                peer,
                inbuf: LineBuf::default(),
                out: Arc::new(ConnOut {
                    buf: Mutex::new(OutBuf::new(self.outbuf_cap)),
                }),
                queued: VecDeque::new(),
                pending: 0,
                read_closed: false,
                closing: false,
                registered: Some((true, false)),
            },
        );
        Ok(())
    }

    /// Drains the socket to EAGAIN, dispatching every complete line.
    fn read_ready(&mut self, id: usize) {
        let read_started = Instant::now();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.read_closed {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.inbuf.feed(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("warning: connection error: {e}");
                    self.close_conn(id);
                    return;
                }
            }
        }
        let conn = self.conns.get_mut(&id).expect("conn still present");
        let received = Instant::now();
        while let Some(line) = conn.inbuf.next_line() {
            if line.trim().is_empty() {
                continue;
            }
            // Lines parsed after a shutdown are dropped: the drain
            // covers work in flight (queued included), not new work.
            if self.shutdown.is_some() {
                continue;
            }
            conn.queued.push_back((line, received));
        }
        telemetry::global().observe_read_parse(read_started.elapsed());
        self.advance(id);
    }

    /// Serves the connection's queued lines in request order: warm
    /// lines ([`LineHandler::try_handle_warm`]) are answered right on
    /// this thread — no worker handoff, no waker round trip; the
    /// response bytes flush in this same event-loop pass — and the
    /// first line needing compute is dispatched to the worker pool.
    /// At most one line per connection is ever in flight, so responses
    /// come back in request order even under pipelining (a warm line
    /// never jumps ahead of a queued cold one, and two cold streams
    /// can't interleave their frames). Called again on each job
    /// completion to keep the queue moving.
    fn advance(&mut self, id: usize) {
        let handler = Arc::clone(&self.handler);
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.pending > 0 {
                return;
            }
            let Some((line, received)) = conn.queued.pop_front() else {
                return;
            };
            let out = Arc::clone(&conn.out);
            let peer = conn.peer.clone();
            let mut sink = InlineSink {
                out: Arc::clone(&out),
            };
            match handler.try_handle_warm(&line, received, &mut sink) {
                Some(Ok(served)) => {
                    if !self.quiet {
                        println!("[{peer}] {}", served.label());
                        let _ = io::stdout().flush();
                    }
                }
                Some(Err(e)) => {
                    eprintln!("warning: connection error: {e}");
                    self.close_conn(id);
                    return;
                }
                None => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.pending += 1;
                    }
                    let tx = self.job_tx.as_ref().expect("job queue open");
                    tx.send(Job {
                        conn: id,
                        line,
                        received,
                        out,
                    })
                    .expect("worker pool alive");
                    return;
                }
            }
        }
    }

    /// Flushes, closes finished connections, and reconciles the epoll
    /// registration with what the connection still needs.
    fn refresh(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        {
            let mut out = conn.out.buf.lock().expect("outbuf lock");
            if out.overflowed() {
                drop(out);
                telemetry::global().note_slow_reader_disconnect();
                eprintln!(
                    "warning: [{}] output buffer full (slow reader) — disconnecting",
                    conn.peer
                );
                self.close_conn(id);
                return;
            }
            match out.write_to(&mut conn.stream) {
                Ok(_) => {}
                Err(e) => {
                    drop(out);
                    eprintln!("warning: connection error: {e}");
                    self.close_conn(id);
                    return;
                }
            }
        }
        let conn = self.conns.get_mut(&id).expect("conn still present");
        let done = (conn.read_closed || conn.closing)
            && conn.pending == 0
            && conn.queued.is_empty()
            && conn.outbuf_is_empty();
        if done {
            self.close_conn(id);
            return;
        }
        let want_read = !conn.read_closed && !conn.closing && self.shutdown.is_none();
        let want_write = !conn.outbuf_is_empty();
        let desired = (want_read, want_write);
        if conn.registered == Some(desired) {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let interest = match desired {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            // No interest at all (e.g. EOF seen, waiting on workers):
            // deregister so level-triggered hangup events do not spin
            // the loop; completions arrive via the waker.
            (false, false) => None,
        };
        let registry = self.poll.registry();
        let result = match (conn.registered.is_some(), interest) {
            (true, Some(i)) => registry.reregister(&mut SourceFd(&fd), Token(id), i),
            (false, Some(i)) => registry.register(&mut SourceFd(&fd), Token(id), i),
            (true, None) => registry.deregister(&mut SourceFd(&fd)),
            (false, None) => Ok(()),
        };
        match result {
            Ok(()) => {
                conn.registered = interest.map(|_| desired);
            }
            Err(e) => {
                eprintln!("warning: epoll registration failed: {e}");
                self.close_conn(id);
            }
        }
    }

    fn close_conn(&mut self, id: usize) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        conn.out.buf.lock().expect("outbuf lock").close();
        if conn.registered.is_some() {
            let fd = conn.stream.as_raw_fd();
            let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
        }
    }

    /// Stops accepting and stops reading; the main loop then drains
    /// pending work and outbufs before exiting.
    fn begin_shutdown(&mut self) {
        if self.shutdown.is_some() {
            return;
        }
        self.shutdown = Some(Instant::now());
        if let Some(listener) = self.listener.take() {
            let fd = listener.as_raw_fd();
            let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{LineBuf, OutBuf};
    use std::io::{self, Write};

    #[test]
    fn linebuf_reassembles_lines_split_anywhere() {
        let mut buf = LineBuf::default();
        assert_eq!(buf.next_line(), None);
        buf.feed(b"{\"a\"");
        assert_eq!(buf.next_line(), None, "partial line is held back");
        buf.feed(b":1}\n{\"b\":2}\r\n{\"c\"");
        assert_eq!(buf.next_line().as_deref(), Some("{\"a\":1}"));
        assert_eq!(
            buf.next_line().as_deref(),
            Some("{\"b\":2}"),
            "CRLF framing is tolerated"
        );
        assert_eq!(buf.next_line(), None);
        buf.feed(b":3}");
        assert_eq!(buf.next_line(), None, "still no newline");
        buf.feed(b"\n");
        assert_eq!(buf.next_line().as_deref(), Some("{\"c\":3}"));
        assert_eq!(buf.next_line(), None);
    }

    #[test]
    fn linebuf_yields_every_line_of_a_pipelined_burst() {
        let mut buf = LineBuf::default();
        buf.feed(b"one\ntwo\nthree\n\nfour\n");
        let lines: Vec<String> = std::iter::from_fn(|| buf.next_line()).collect();
        assert_eq!(lines, ["one", "two", "three", "", "four"]);
    }

    /// A writer accepting a fixed number of bytes per call, then
    /// `WouldBlock` — a socket with a tiny send buffer.
    struct Trickle {
        accepted: Vec<u8>,
        per_call: usize,
        calls_left: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_left == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_left -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn outbuf_resumes_partial_writes_across_eagain() {
        let mut out = OutBuf::new(1024);
        out.push("{\"frame\":1}").unwrap();
        out.push("{\"frame\":2}").unwrap();
        let total = out.len();

        let mut sink = Trickle {
            accepted: Vec::new(),
            per_call: 5,
            calls_left: 2,
        };
        assert!(!out.write_to(&mut sink).unwrap(), "EAGAIN mid-buffer");
        assert_eq!(sink.accepted.len(), 10);
        assert_eq!(out.len(), total - 10, "cursor holds the remainder");

        // More frames arrive while blocked; the flush later resumes
        // exactly where it stopped, no bytes duplicated or dropped.
        out.push("{\"frame\":3}").unwrap();
        sink.calls_left = usize::MAX;
        sink.per_call = 7;
        assert!(out.write_to(&mut sink).unwrap(), "drains once writable");
        assert_eq!(
            String::from_utf8(sink.accepted).unwrap(),
            "{\"frame\":1}\n{\"frame\":2}\n{\"frame\":3}\n"
        );
        assert!(out.is_empty());
    }

    #[test]
    fn outbuf_overflow_latches_and_rejects_further_pushes() {
        let mut out = OutBuf::new(16);
        out.push("0123456789").unwrap();
        let err = out.push("0123456789").expect_err("cap exceeded");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(out.overflowed());
        let err = out.push("x").expect_err("stays rejected after overflow");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn outbuf_close_fails_pushes_with_broken_pipe() {
        let mut out = OutBuf::new(64);
        out.push("alive").unwrap();
        out.close();
        assert!(out.is_empty(), "closing discards pending bytes");
        let err = out.push("dead").expect_err("closed outbuf rejects");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn outbuf_compacts_the_flushed_prefix() {
        let mut out = OutBuf::new(64);
        out.push("aaaaaaaaaa").unwrap();
        let mut sink = Trickle {
            accepted: Vec::new(),
            per_call: 8,
            calls_left: 1,
        };
        assert!(!out.write_to(&mut sink).unwrap());
        // The next push compacts: capacity accounting is on *pending*
        // bytes, so the flushed prefix must not count against the cap.
        out.push(&"b".repeat(50)).unwrap();
        assert_eq!(out.len(), 3 + 51);
    }
}
