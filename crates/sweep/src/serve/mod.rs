//! The server runtime behind `yoco-serve`: one shared engine and cache
//! for every connection, fronted by admission control.
//!
//! The PR-2 frontend ran one engine per connection and accepted
//! unbounded work; this module is the piece that turns the NDJSON
//! protocol into a real service:
//!
//! * **Admission control** — a [`Gate`] bounds the number of evaluation
//!   requests in flight (`--queue-depth`). Requests beyond the bound are
//!   answered immediately — a `Busy` frame for protocol-v2 clients, a
//!   [`SweepError::Busy`] refusal for v1 clients — instead of queueing
//!   without limit. The `retry_after_ms` hint adapts: it is derived from
//!   an EWMA of observed per-request service time ([`Gate::record_service`]),
//!   with the fixed [`RETRY_QUANTUM_MS`] as the cold-start prior.
//! * **Worker budgeting** — the server's `--jobs` budget is split
//!   evenly across requests in flight at admission time
//!   ([`split_jobs`]), so a request arriving behind a huge batch still
//!   gets its fair share of workers (see `split_jobs` for the
//!   transient-oversubscription caveat).
//! * **Streaming** — protocol-v2 requests are answered incrementally
//!   (`Accepted` at admission, one `Cell` frame per scenario in
//!   completion order via [`Engine::run_with`], then `Done`), so large
//!   grids report progress instead of going silent.
//! * **Warm-path memoization** — a bounded in-memory memo keyed by the
//!   request's scenario list holds the pre-serialized `Cell` frame bytes
//!   (and the matching buffered cells) of completed batches, so a warm
//!   repeat skips both the per-cell cache re-reads and the per-request
//!   re-serialization that bounded throughput before.
//! * **Observability** — a `"Status"` control line answers a
//!   [`StatusReport`] (occupancy, queue depth, jobs, service counters)
//!   without touching the gate, so load balancers — including the
//!   [`crate::cluster`] coordinator — can probe a fully busy server.
//!
//! Frames leave through the [`FrameSink`] trait, so the whole dispatch
//! ([`Runtime::handle_line`]) is testable in process — `Vec<Response>`
//! is a sink — while the binaries serve TCP through the event-driven
//! epoll reactor ([`reactor::serve_reactor`], generic over
//! [`LineHandler`] so the cluster coordinator reuses it unchanged).

use crate::api::{
    CellOutcome, CellStatus, EvalResponse, Request, Response, StatusReport, SweepError, API_V1,
    API_V2,
};
use crate::engine::{Engine, SweepReport};
use crate::executor;
use crate::scenario::Scenario;
use crate::telemetry::{self, trace};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub mod reactor;

pub use reactor::{serve_reactor, ReactorConfig, DEFAULT_OUTBUF_CAP};

/// Default bound on concurrently admitted evaluation requests.
pub const DEFAULT_QUEUE_DEPTH: usize = 4;

/// The cold-start prior for the `retry_after_ms` hint: before any
/// request has completed, a rejected client is told to back off roughly
/// one quantum divided by the queue depth — slots drain concurrently, so
/// the deeper the queue, the sooner one is expected to free up. Once
/// requests complete, the observed service-time EWMA replaces this
/// constant as the numerator.
pub const RETRY_QUANTUM_MS: u64 = 250;

/// Smoothing factor of the service-time EWMA: each completed request
/// pulls the estimate a quarter of the way toward its own service time,
/// so the hint tracks load shifts within a few requests without
/// thrashing on one outlier.
pub const SERVICE_EWMA_ALPHA: f64 = 0.25;

/// Bound on memoized warm cells. Insertion past it evicts the oldest
/// entries first (FIFO) — the memo is a pure cache of deterministic
/// results, so eviction can never be wrong, only cold.
const MEMO_CAP: usize = 4096;

/// Sizing of the runtime: admission bound and worker budget.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum evaluation requests in flight at once. `0` rejects every
    /// evaluation — a drain/maintenance mode (control requests still
    /// answer).
    pub queue_depth: usize,
    /// Total worker budget, split across in-flight requests.
    pub jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_depth: DEFAULT_QUEUE_DEPTH,
            jobs: executor::default_jobs(),
        }
    }
}

/// The admission verdict for a rejected request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Suggested client backoff before retrying, in milliseconds.
    pub retry_after_ms: u64,
}

/// Bounded admission: at most `depth` tickets outstanding at once.
///
/// Admission order is arrival order at the lock; there is deliberately
/// no waiting list — a full gate answers [`Busy`] immediately so clients
/// hold the backoff, not the server. Dropped tickets feed the observed
/// service time into an EWMA ([`Gate::record_service`]) that the busy
/// hint is derived from.
#[derive(Debug)]
pub struct Gate {
    depth: usize,
    occupied: Mutex<usize>,
    /// EWMA of observed per-request service time in milliseconds;
    /// `None` until the first request completes (cold-start prior).
    service_ewma_ms: Mutex<Option<f64>>,
    /// Cumulative microseconds tickets have held slots (every ticket,
    /// including memo replays the EWMA skips): slot-seconds / uptime =
    /// achieved concurrency, surfaced as `busy_ms` in `Status`.
    slot_held_us: AtomicU64,
}

impl Gate {
    /// A gate admitting at most `depth` requests at once.
    pub fn new(depth: usize) -> Self {
        Self {
            depth,
            occupied: Mutex::new(0),
            service_ewma_ms: Mutex::new(None),
            slot_held_us: AtomicU64::new(0),
        }
    }

    /// Tries to admit one request. On success the returned [`Ticket`]
    /// holds the slot until dropped; its `position` is the number of
    /// requests already in flight (`0` = running alone). On rejection
    /// the [`Busy`] hint is [`Gate::retry_hint_ms`].
    pub fn try_enter(&self) -> Result<Ticket<'_>, Busy> {
        let mut occupied = self.occupied.lock().expect("gate lock");
        if *occupied >= self.depth {
            return Err(Busy {
                retry_after_ms: self.retry_hint_ms(),
            });
        }
        let position = *occupied;
        *occupied += 1;
        telemetry::global().gate_entered();
        Ok(Ticket {
            gate: self,
            position,
            entered: Instant::now(),
            record: true,
        })
    }

    /// Deadline-aware admission: like [`Gate::try_enter`], but a
    /// request whose `deadline_ms` budget was already spent between
    /// receipt (`received`, stamped by the transport when the line was
    /// parsed) and this call is answered [`Busy`] without occupying a
    /// slot — by its own declaration the client has stopped waiting,
    /// so evaluating would burn a slot on an abandoned request. The
    /// hint still carries the current estimate, so a retrying client
    /// backs off sensibly.
    pub fn admit(&self, received: Instant, deadline_ms: Option<u64>) -> Result<Ticket<'_>, Busy> {
        if let Some(ms) = deadline_ms {
            if received.elapsed() >= Duration::from_millis(ms) {
                telemetry::global().note_deadline_drop();
                return Err(Busy {
                    retry_after_ms: self.retry_hint_ms(),
                });
            }
        }
        self.try_enter()
    }

    /// Requests currently admitted.
    pub fn occupancy(&self) -> usize {
        *self.occupied.lock().expect("gate lock")
    }

    /// The configured admission bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Folds one completed request's service time into the EWMA behind
    /// the busy hint. Called by [`Ticket`] on drop; exposed so tests can
    /// drive convergence with synthetic durations.
    pub fn record_service(&self, elapsed: Duration) {
        let ms = elapsed.as_secs_f64() * 1e3;
        let mut ewma = self.service_ewma_ms.lock().expect("gate ewma lock");
        *ewma = Some(match *ewma {
            None => ms,
            Some(prev) => prev + SERVICE_EWMA_ALPHA * (ms - prev),
        });
    }

    /// The current per-request service-time estimate in milliseconds:
    /// the EWMA of completed requests, or the [`RETRY_QUANTUM_MS`] prior
    /// before anything has completed.
    pub fn service_estimate_ms(&self) -> f64 {
        self.service_ewma_ms
            .lock()
            .expect("gate ewma lock")
            .unwrap_or(RETRY_QUANTUM_MS as f64)
    }

    /// The backoff hint for a rejected request: the service-time
    /// estimate divided by the queue depth (slots drain concurrently, so
    /// one is expected to free up after an estimate's worth of work
    /// spread over `depth` lanes), rounded to the nearest millisecond
    /// and floored at 1 ms so the hint is always actionable.
    pub fn retry_hint_ms(&self) -> u64 {
        let per_slot = self.service_estimate_ms() / self.depth.max(1) as f64;
        (per_slot.round() as u64).max(1)
    }

    /// Cumulative milliseconds requests have held admission slots —
    /// every admitted request counts, including the warm replays the
    /// service EWMA deliberately skips, because both occupy a slot.
    pub fn slot_held_ms(&self) -> u64 {
        self.slot_held_us.load(Ordering::Relaxed) / 1_000
    }
}

/// An admitted request's slot; dropping it releases the slot and
/// records the held duration as one service-time observation.
#[derive(Debug)]
pub struct Ticket<'a> {
    gate: &'a Gate,
    position: usize,
    entered: Instant,
    record: bool,
}

impl Ticket<'_> {
    /// In-flight requests ahead of this one at admission time.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Excludes this request from the service-time EWMA. Used by the
    /// warm-memo replay path: memo hits complete in microseconds and
    /// never cause queueing, so folding them in would collapse the
    /// busy hint to nothing while the *slow* requests that actually
    /// occupy slots keep clients waiting.
    pub fn skip_service_record(&mut self) {
        self.record = false;
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let held = self.entered.elapsed();
        if self.record {
            self.gate.record_service(held);
        }
        self.gate.slot_held_us.fetch_add(
            held.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        *self.gate.occupied.lock().expect("gate lock") -= 1;
        telemetry::global().gate_released();
    }
}

/// Splits a total worker budget evenly across in-flight requests,
/// never starving a request below one worker.
///
/// Each request's share is fixed at its own admission (a running
/// request's scoped-thread pool cannot be resized), so the budget is an
/// admission-time fairness rule, not a hard global cap: a request
/// admitted alone takes the whole budget, and later arrivals shrink
/// only their own shares — the live worker total can transiently
/// exceed `budget` until earlier requests finish.
pub fn split_jobs(budget: usize, in_flight: usize) -> usize {
    (budget / in_flight.max(1)).max(1)
}

/// Monotonic service counters shared by the runtime and the cluster
/// coordinator, surfaced through [`StatusReport`].
#[derive(Debug, Default)]
pub struct Tally {
    served: AtomicU64,
    cells: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl Tally {
    /// Records one completed evaluation (mirrored into the process-wide
    /// [`telemetry`] registry so `Metrics` scrapes agree with `Status`).
    pub fn note_eval(&self, cells: usize, hits: usize, misses: usize) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.cells.fetch_add(cells as u64, Ordering::Relaxed);
        self.hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.misses.fetch_add(misses as u64, Ordering::Relaxed);
        telemetry::global().note_eval_cells(cells as u64, hits as u64, misses as u64);
    }

    /// Records one admission rejection.
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        telemetry::global().note_rejected();
    }

    /// Copies the counters into a partially filled [`StatusReport`]
    /// (the caller supplies role, sizing, and occupancy).
    pub fn fill(&self, report: &mut StatusReport) {
        report.served = self.served.load(Ordering::Relaxed);
        report.cells = self.cells.load(Ordering::Relaxed);
        report.hits = self.hits.load(Ordering::Relaxed);
        report.misses = self.misses.load(Ordering::Relaxed);
        report.rejected = self.rejected.load(Ordering::Relaxed);
    }
}

/// Where response frames go: the runtime's only output channel.
///
/// `Send` because streamed `Cell` frames are emitted from the engine's
/// worker threads (serialized through a mutex inside the runtime).
pub trait FrameSink: Send {
    /// Delivers one frame; for socket sinks this is serialize + write +
    /// flush, so a returned error means the client is gone.
    fn send(&mut self, frame: &Response) -> io::Result<()>;

    /// Delivers one already-serialized frame line (no trailing newline).
    /// The warm-path memo and the cluster coordinator forward frames as
    /// raw bytes through this, skipping re-serialization; the default
    /// decodes and falls back to [`FrameSink::send`] so in-process
    /// collector sinks still see typed frames.
    fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let frame = serde_json::from_str::<Response>(line)
            .map_err(|e| io::Error::other(format!("undecodable raw frame {line:?}: {e}")))?;
        self.send(&frame)
    }
}

/// The in-process collector sink used by tests and embedders.
impl FrameSink for Vec<Response> {
    fn send(&mut self, frame: &Response) -> io::Result<()> {
        self.push(frame.clone());
        Ok(())
    }
}

/// A sink writing one JSON frame per line (the NDJSON wire form),
/// flushing after every frame so streamed progress is visible
/// immediately.
#[derive(Debug)]
pub struct LineSink<W: Write + Send> {
    inner: W,
}

impl<W: Write + Send> LineSink<W> {
    /// Wraps a writer (for the server: the TCP stream's write half).
    pub fn new(inner: W) -> Self {
        Self { inner }
    }
}

impl<W: Write + Send> FrameSink for LineSink<W> {
    fn send(&mut self, frame: &Response) -> io::Result<()> {
        let text = serde_json::to_string(frame).map_err(|e| io::Error::other(e.to_string()))?;
        writeln!(self.inner, "{text}")?;
        self.inner.flush()
    }

    fn send_raw(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.inner, "{line}")?;
        self.inner.flush()
    }
}

/// What one handled line was, for the caller's logging and lifecycle
/// (the transport acts on [`Served::Shutdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Served {
    /// An evaluation ran to completion (buffered or streamed).
    Eval {
        /// The request id.
        id: String,
        /// Cells in the batch.
        cells: usize,
        /// Cells served from the cache.
        hits: usize,
        /// Cells computed (or failed) fresh.
        misses: usize,
        /// Whether the exchange streamed v2 frames.
        streamed: bool,
    },
    /// An evaluation was refused at admission (queue full) — retrying
    /// after the hinted backoff can succeed.
    Rejected {
        /// The request id.
        id: String,
        /// The backoff hint sent to the client.
        retry_after_ms: u64,
    },
    /// An evaluation was refused permanently (unsupported protocol
    /// version) — retrying the same request cannot succeed.
    Refused {
        /// The request id.
        id: String,
    },
    /// A liveness check.
    Ping,
    /// A load/counter probe.
    Status,
    /// A telemetry scrape ([`crate::telemetry::MetricsReport`]).
    Metrics,
    /// A shutdown request — the caller should stop accepting and drain.
    Shutdown,
    /// A line that did not decode as a request.
    Malformed,
}

impl Served {
    /// One-line log label, mirroring the pre-runtime server's output.
    pub fn label(&self) -> String {
        match self {
            Served::Eval {
                id,
                cells,
                hits,
                misses,
                streamed,
            } => format!(
                "eval {id}: {cells} cells, {hits} hits, {misses} misses{}",
                if *streamed { ", streamed" } else { "" }
            ),
            Served::Rejected { id, retry_after_ms } => {
                format!("eval {id}: rejected, retry after {retry_after_ms} ms")
            }
            Served::Refused { id } => format!("eval {id}: refused (unsupported version)"),
            Served::Ping => "ping".into(),
            Served::Status => "status".into(),
            Served::Metrics => "metrics".into(),
            Served::Shutdown => "shutdown".into(),
            Served::Malformed => "bad request".into(),
        }
    }
}

/// One memoized cell (status already rewritten to `Hit`), held as its
/// two pre-serialized wire forms: the v2 `Cell` frame line and the
/// standalone outcome object spliced into buffered v1 `cells` arrays.
#[derive(Debug)]
struct MemoCell {
    line: String,
    outcome_json: String,
}

impl MemoCell {
    fn new(outcome: CellOutcome) -> Self {
        let line = serde_json::to_string(&Response::Cell(outcome.clone()))
            .expect("frame serialization is infallible");
        let outcome_json =
            serde_json::to_string(&outcome).expect("frame serialization is infallible");
        Self { line, outcome_json }
    }
}

/// The per-cell warm memo: scenario content (plus display id, which
/// appears verbatim in frames) → pre-serialized `Cell` frame. Keyed
/// per cell rather than per batch so overlapping grids share entries —
/// a batch warmed by *any* combination of earlier requests replays
/// without touching the cache. Bounded FIFO: inserting past `cap`
/// evicts the oldest keys.
#[derive(Debug)]
struct CellMemo {
    entries: HashMap<String, Arc<MemoCell>>,
    /// Insertion order of `entries` keys (no duplicates: re-inserting
    /// an existing key replaces the value in place), the FIFO eviction
    /// queue.
    order: VecDeque<String>,
    cap: usize,
}

impl CellMemo {
    fn new(cap: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// The memo key of one scenario. [`Scenario::cache_key`] hashes
    /// normalized content only — the display id is deliberately not
    /// part of it — but `Cell` frames embed the id, so two scenarios
    /// with identical content and different labels must not share a
    /// memoized frame.
    fn key(scenario: &Scenario) -> String {
        format!("{}\u{1f}{}", scenario.id, scenario.cache_key())
    }

    /// All-or-nothing lookup: the memoized cells of `scenarios` in
    /// request order, or `None` if any cell is missing (the engine run
    /// then recomputes only what the result cache cannot answer).
    fn lookup_all(&self, scenarios: &[Scenario]) -> Option<Vec<Arc<MemoCell>>> {
        scenarios
            .iter()
            .map(|s| self.entries.get(&Self::key(s)).cloned())
            .collect()
    }

    fn insert(&mut self, key: String, cell: MemoCell) {
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = Arc::new(cell);
            return;
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, Arc::new(cell));
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One fully-memoized batch: the shared per-cell entries in request
/// order plus the pre-assembled v1 `cells` array fragment, so a
/// buffered warm response splices cached bytes instead of cloning and
/// re-serializing every outcome.
#[derive(Debug)]
struct BatchEntry {
    cells: Vec<Arc<MemoCell>>,
    /// `[<outcome>,<outcome>,…]` — byte-identical to serde's
    /// serialization of the response's `cells` vector.
    cells_json: String,
}

impl BatchEntry {
    fn assemble(cells: Vec<Arc<MemoCell>>) -> Self {
        let mut cells_json = String::with_capacity(
            2 + cells
                .iter()
                .map(|c| c.outcome_json.len() + 1)
                .sum::<usize>(),
        );
        cells_json.push('[');
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                cells_json.push(',');
            }
            cells_json.push_str(&cell.outcome_json);
        }
        cells_json.push(']');
        Self { cells, cells_json }
    }
}

/// The batch-level front of the warm memo: one fingerprint of the
/// request's scenario list (a single serialize + hash) instead of a
/// per-cell key computation per request — on a warm repeat the key
/// derivation was most of the server's CPU. Entries are assembled from
/// [`CellMemo`] hits, whose values are deterministic, so a batch entry
/// can never go stale — only cold. Bounded FIFO like the cell memo.
#[derive(Debug)]
struct BatchMemo {
    entries: HashMap<u64, Arc<BatchEntry>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl BatchMemo {
    fn new(cap: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// The batch fingerprint: every scenario hashed structurally, in
    /// order ([`hash_scenario`]). Structural rather than serialized —
    /// formatting 40 scenarios' floats back into JSON costs more than
    /// the whole warm lookup it would key. Identical batches collide
    /// (which is the point); normalized-equal but differently-spelled
    /// batches get separate entries that share the underlying
    /// [`MemoCell`]s.
    fn key(scenarios: &[Scenario]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        scenarios.len().hash(&mut h);
        for scenario in scenarios {
            hash_scenario(scenario, &mut h);
        }
        h.finish()
    }

    fn lookup(&self, key: u64) -> Option<Arc<BatchEntry>> {
        self.entries.get(&key).cloned()
    }

    fn insert(&mut self, key: u64, entry: Arc<BatchEntry>) {
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = entry;
            return;
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        self.order.push_back(key);
        self.entries.insert(key, entry);
    }
}

/// Bound on memoized batch entries ([`BatchMemo`]). Smaller than
/// [`MEMO_CAP`]: entries are per distinct request shape, not per cell.
const MEMO_BATCH_CAP: usize = 256;

/// Feeds one scenario into `h` structurally: strings as bytes, enums
/// as discriminants, floats by bit pattern — no text formatting. Every
/// field that distinguishes two scenarios on the wire must be hashed
/// here; an omission would let [`BatchMemo`] answer one batch with
/// another's cells.
fn hash_scenario(s: &Scenario, h: &mut impl Hasher) {
    use crate::scenario::{ScenarioKind, WorkloadSpec};
    use std::mem::discriminant;
    s.id.hash(h);
    discriminant(&s.kind).hash(h);
    match &s.kind {
        ScenarioKind::Gemm {
            accelerator,
            design,
            workload,
        } => {
            discriminant(accelerator).hash(h);
            hash_design(design, h);
            discriminant(workload).hash(h);
            match workload {
                WorkloadSpec::Zoo { model } => model.hash(h),
                WorkloadSpec::Gemm {
                    name,
                    m,
                    k,
                    n,
                    kind,
                } => {
                    name.hash(h);
                    (m, k, n).hash(h);
                    discriminant(kind).hash(h);
                }
            }
        }
        ScenarioKind::Attention {
            model,
            dims,
            design,
        } => {
            model.hash(h);
            (dims.seq, dims.d_model, dims.heads).hash(h);
            hash_design(design, h);
        }
        ScenarioKind::Study { study } => discriminant(study).hash(h),
    }
}

/// The [`hash_scenario`] leaf for design points: `Option` knobs hash
/// directly, the float knob hashes by bit pattern.
fn hash_design(d: &crate::scenario::DesignPoint, h: &mut impl Hasher) {
    (
        d.ima_stack,
        d.ima_width,
        d.dimas_per_tile,
        d.simas_per_tile,
        d.tiles,
    )
        .hash(h);
    d.activity.map(f64::to_bits).hash(h);
}

/// The shared server runtime: one engine + cache + admission gate,
/// shared by every connection. The transport (TCP, a test harness)
/// feeds request lines to [`Runtime::handle_line`] with a sink for the
/// reply frames.
#[derive(Debug)]
pub struct Runtime {
    engine: Engine,
    gate: Gate,
    jobs_budget: usize,
    tally: Tally,
    memo: Mutex<CellMemo>,
    batch_memo: Mutex<BatchMemo>,
}

impl Runtime {
    /// A runtime over `engine` (whose own `jobs` setting is overridden
    /// per request by the split budget).
    pub fn new(engine: Engine, config: ServeConfig) -> Self {
        Self {
            engine,
            gate: Gate::new(config.queue_depth),
            jobs_budget: config.jobs.max(1),
            tally: Tally::default(),
            memo: Mutex::new(CellMemo::new(MEMO_CAP)),
            batch_memo: Mutex::new(BatchMemo::new(MEMO_BATCH_CAP)),
        }
    }

    /// The admission gate (exposed for observability).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The engine policy requests run under.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The current [`StatusReport`]: occupancy, sizing, and service
    /// counters. Control-plane — never touches the gate.
    pub fn status(&self) -> StatusReport {
        let telem = telemetry::global();
        let mut report = StatusReport {
            role: "serve".into(),
            occupancy: self.gate.occupancy(),
            queue_depth: self.gate.depth(),
            jobs: self.jobs_budget,
            service_estimate_ms: self.gate.service_estimate_ms().round() as u64,
            busy_ms: self.gate.slot_held_ms(),
            fd_sheds: telem.fd_sheds(),
            slow_reader_disconnects: telem.slow_reader_disconnects(),
            ..StatusReport::default()
        };
        self.tally.fill(&mut report);
        report
    }

    /// Handles one request line end to end, emitting every reply frame
    /// through `sink`. An `Err` means the sink failed (client gone) —
    /// the protocol itself never errors out of this function.
    pub fn handle_line(&self, line: &str, sink: &mut dyn FrameSink) -> io::Result<Served> {
        self.handle_line_at(line, Instant::now(), sink)
    }

    /// [`Runtime::handle_line`] with an explicit receipt instant: the
    /// reactor stamps each line as it is parsed off the socket, so a
    /// request's `deadline_ms` measures real queueing time (parse →
    /// worker pickup → admission), not just the final dispatch hop.
    pub fn handle_line_at(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        dispatch_line(
            line,
            sink,
            "server",
            || self.status(),
            |req, sink| self.eval_buffered(req, received, sink),
            |req, sink| self.eval_streaming(req, received, sink),
        )
    }

    /// Answers `line` on the calling thread iff it can be served
    /// without compute: an eval request whose every cell is memoized
    /// (or that the gate rejects outright). `None` defers to
    /// [`Runtime::handle_line_at`] with no frames emitted. The reactor
    /// calls this from its event thread, sparing warm repeats the
    /// worker handoff — two context switches per request, which is
    /// most of a warm request's latency on a loaded box.
    pub fn try_handle_warm(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> Option<io::Result<Served>> {
        let Ok(Request::Eval(req)) = serde_json::from_str::<Request>(line) else {
            return None;
        };
        if req.version != API_V1 && req.version != API_V2 {
            return None;
        }
        // The memo probe comes before admission: it holds no slot, and
        // on a miss the line is re-dispatched untouched (the worker
        // repeats the admission verdict, so rejection bytes are
        // identical either way).
        let entry = self.memo_lookup(&req)?;
        // This request is handled here for good — it never reaches
        // `dispatch_line` — so it joins `requests_total` now.
        telemetry::global().note_request();
        let streamed = req.version == API_V2;
        let ticket = match self.gate.admit(received, req.deadline_ms) {
            Ok(ticket) => ticket,
            Err(busy) => {
                return Some(if streamed {
                    reject_streaming(sink, &self.tally, req.id, busy.retry_after_ms)
                } else {
                    reject_buffered(sink, &self.tally, req.id, busy.retry_after_ms)
                });
            }
        };
        let span = self.observe_admission(&req, received);
        Some(if streamed {
            self.eval_streaming_warm(req, ticket, entry, span, sink)
        } else {
            self.eval_buffered_warm(req, ticket, entry, span, sink)
        })
    }

    /// The memoized cells answering a request, if the warm path
    /// applies: the memo mirrors the result cache, so it is only
    /// consulted when a cache is attached (without one, a repeat
    /// request genuinely recomputes and must report misses), never
    /// under `force`, and only when *every* cell of the batch is
    /// memoized (cells memoized by any earlier batch count — the keys
    /// are per cell, so overlapping grids share).
    fn memo_lookup(&self, req: &crate::api::EvalRequest) -> Option<Arc<BatchEntry>> {
        if req.force || self.engine.cache().is_none() {
            return None;
        }
        // Batch fingerprint first: a repeat of a known request shape
        // answers with one hash and one map probe, skipping the
        // per-cell key derivation below entirely.
        let key = BatchMemo::key(&req.scenarios);
        if let Some(entry) = self.batch_memo.lock().expect("batch memo lock").lookup(key) {
            return Some(entry);
        }
        let cells = self
            .memo
            .lock()
            .expect("memo lock")
            .lookup_all(&req.scenarios)?;
        let entry = Arc::new(BatchEntry::assemble(cells));
        self.batch_memo
            .lock()
            .expect("batch memo lock")
            .insert(key, Arc::clone(&entry));
        Some(entry)
    }

    /// Memoizes a completed batch's cells for warm repeats. Failed
    /// cells are never memoized (a retry should re-attempt them, and a
    /// replay must not resurrect stale failures), and without a cache
    /// the memo stays off entirely.
    fn memo_store(&self, report: &SweepReport) {
        if self.engine.cache().is_none() {
            return;
        }
        let mut memo = self.memo.lock().expect("memo lock");
        for cell in report.cells.iter().filter(|c| c.error.is_none()) {
            let mut outcome = CellOutcome::from_cell(cell);
            outcome.status = CellStatus::Hit;
            memo.insert(CellMemo::key(&cell.scenario), MemoCell::new(outcome));
        }
    }

    /// Post-admission bookkeeping shared by every eval path: the
    /// queue-wait histogram sample (receipt → admission) and, when
    /// tracing is on, the request's span with its `queued` stage
    /// record. Returns the span id later stages append under.
    fn observe_admission(
        &self,
        req: &crate::api::EvalRequest,
        received: Instant,
    ) -> Option<String> {
        let queued = received.elapsed();
        telemetry::global().observe_queue_wait(queued);
        let span = trace::span_for_request(&req.id)?;
        trace::record(
            &span,
            &req.id,
            &trace_grid(&req.scenarios),
            "queued",
            queued,
            req.scenarios.len(),
        );
        Some(span)
    }

    /// The `flush` stage sample: evaluation end → terminal frame
    /// buffered toward the client.
    fn observe_flush(
        &self,
        req: &crate::api::EvalRequest,
        span: Option<&str>,
        started: Instant,
        cells: usize,
    ) {
        let flushed = started.elapsed();
        telemetry::global().observe_flush(flushed);
        if let Some(span) = span {
            trace::record(
                span,
                &req.id,
                &trace_grid(&req.scenarios),
                "flush",
                flushed,
                cells,
            );
        }
    }

    /// Protocol v1: admission, then one buffered [`EvalResponse`] line.
    fn eval_buffered(
        &self,
        req: crate::api::EvalRequest,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        let ticket = match self.gate.admit(received, req.deadline_ms) {
            Ok(ticket) => ticket,
            Err(busy) => {
                return reject_buffered(sink, &self.tally, req.id, busy.retry_after_ms);
            }
        };
        let span = self.observe_admission(&req, received);
        if let Some(entry) = self.memo_lookup(&req) {
            return self.eval_buffered_warm(req, ticket, entry, span, sink);
        }
        let eval_started = Instant::now();
        let report = self.request_engine(req.force).run(&req.scenarios);
        let evaled = eval_started.elapsed();
        telemetry::global().observe_eval(evaled);
        if let Some(span) = &span {
            trace::record(
                span,
                &req.id,
                &trace_grid(&req.scenarios),
                "eval",
                evaled,
                report.cells.len(),
            );
        }
        self.memo_store(&report);
        let flush_started = Instant::now();
        let response = EvalResponse::from_report(req.id.clone(), &report);
        drop(ticket);
        // Counters commit before the terminal frame: a client reacting
        // to the response instantly (a `Status` probe, say) must see
        // this exchange already counted.
        self.tally
            .note_eval(report.cells.len(), report.hits, report.misses);
        sink.send(&Response::Eval(response))?;
        self.observe_flush(&req, span.as_deref(), flush_started, report.cells.len());
        Ok(Served::Eval {
            id: req.id,
            cells: report.cells.len(),
            hits: report.hits,
            misses: report.misses,
            streamed: false,
        })
    }

    /// Protocol v2: `Accepted` at admission, a `Cell` frame per scenario
    /// in completion order, then `Done` — or one `Busy` frame when the
    /// gate is full. Warm repeats of memoized batches replay the
    /// pre-serialized frame bytes instead of re-reading the cache.
    fn eval_streaming(
        &self,
        req: crate::api::EvalRequest,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        let ticket = match self.gate.admit(received, req.deadline_ms) {
            Ok(ticket) => ticket,
            Err(busy) => {
                return reject_streaming(sink, &self.tally, req.id, busy.retry_after_ms);
            }
        };
        let span = self.observe_admission(&req, received);
        if let Some(entry) = self.memo_lookup(&req) {
            return self.eval_streaming_warm(req, ticket, entry, span, sink);
        }
        sink.send(&Response::Accepted {
            id: req.id.clone(),
            position: ticket.position(),
        })?;
        // Cell frames are written from the engine's worker threads;
        // the latch serializes them and, past the first transport
        // error, stops writing but lets the computation finish (the
        // cache still fills, so the client's retry is warm).
        let eval_started = Instant::now();
        let latch = LatchSink::new(sink);
        let report = self
            .request_engine(req.force)
            .run_with(&req.scenarios, |_, cell| {
                latch.send(&Response::Cell(CellOutcome::from_cell(cell)));
            });
        let evaled = eval_started.elapsed();
        telemetry::global().observe_eval(evaled);
        if let Some(span) = &span {
            trace::record(
                span,
                &req.id,
                &trace_grid(&req.scenarios),
                "eval",
                evaled,
                report.cells.len(),
            );
        }
        self.memo_store(&report);
        let (sink, error) = latch.finish();
        if let Some(e) = error {
            return Err(e);
        }
        let flush_started = Instant::now();
        drop(ticket);
        self.tally
            .note_eval(report.cells.len(), report.hits, report.misses);
        sink.send(&Response::Done {
            id: req.id.clone(),
            hits: report.hits,
            misses: report.misses,
        })?;
        self.observe_flush(&req, span.as_deref(), flush_started, report.cells.len());
        Ok(Served::Eval {
            id: req.id,
            cells: report.cells.len(),
            hits: report.hits,
            misses: report.misses,
            streamed: true,
        })
    }

    /// The warm (memoized) tail of [`Runtime::eval_buffered`]: the
    /// response line is spliced around the batch's pre-assembled
    /// `cells` fragment ([`warm_eval_line`]) instead of cloning and
    /// re-serializing every outcome. Factored out so
    /// [`Runtime::try_handle_warm`] can run it on the reactor thread —
    /// by construction it never computes.
    fn eval_buffered_warm(
        &self,
        req: crate::api::EvalRequest,
        mut ticket: Ticket<'_>,
        entry: Arc<BatchEntry>,
        span: Option<String>,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        ticket.skip_service_record();
        telemetry::global().note_memo_served();
        let n = entry.cells.len();
        let flush_started = Instant::now();
        let line = warm_eval_line(&req.id, entry.as_ref());
        // The slot is freed before the response line: a client
        // reacting to it instantly must see its slot available,
        // not a stale occupancy (or a spurious `Busy` at depth 1).
        drop(ticket);
        self.tally.note_eval(n, n, 0);
        sink.send_raw(&line)?;
        self.observe_flush(&req, span.as_deref(), flush_started, n);
        Ok(Served::Eval {
            id: req.id,
            cells: n,
            hits: n,
            misses: 0,
            streamed: false,
        })
    }

    /// The warm tail of [`Runtime::eval_streaming`]: `Accepted`, the
    /// pre-serialized cell frames, `Done`. Shared with
    /// [`Runtime::try_handle_warm`]; never computes.
    fn eval_streaming_warm(
        &self,
        req: crate::api::EvalRequest,
        mut ticket: Ticket<'_>,
        entry: Arc<BatchEntry>,
        span: Option<String>,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        sink.send(&Response::Accepted {
            id: req.id.clone(),
            position: ticket.position(),
        })?;
        ticket.skip_service_record();
        telemetry::global().note_memo_served();
        let n = entry.cells.len();
        let flush_started = Instant::now();
        for cell in &entry.cells {
            sink.send_raw(&cell.line)?;
        }
        drop(ticket);
        self.tally.note_eval(n, n, 0);
        sink.send(&Response::Done {
            id: req.id.clone(),
            hits: n,
            misses: 0,
        })?;
        self.observe_flush(&req, span.as_deref(), flush_started, n);
        Ok(Served::Eval {
            id: req.id,
            cells: n,
            hits: n,
            misses: 0,
            streamed: true,
        })
    }

    /// The engine policy for one admitted request: the shared engine
    /// with its share of the worker budget (split across everything in
    /// flight at admission time) and the request's `force` flag.
    fn request_engine(&self, force: bool) -> Engine {
        let share = split_jobs(self.jobs_budget, self.gate.occupancy());
        self.engine.clone().jobs(share).force(force)
    }
}

/// The shared request-line dispatch of the single-box [`Runtime`] and
/// the cluster [`Coordinator`](crate::cluster::Coordinator): decode,
/// control frames (`Ping`/`Status`/`Shutdown`), malformed lines, and
/// version routing with the unsupported-version refusal — everything
/// that must stay byte-identical between the two endpoints lives here
/// exactly once. The caller supplies its status snapshot and the two
/// eval paths; `speaker` names the endpoint in the refusal text.
pub(crate) fn dispatch_line(
    line: &str,
    sink: &mut dyn FrameSink,
    speaker: &str,
    status: impl FnOnce() -> StatusReport,
    eval_buffered: impl FnOnce(crate::api::EvalRequest, &mut dyn FrameSink) -> io::Result<Served>,
    eval_streaming: impl FnOnce(crate::api::EvalRequest, &mut dyn FrameSink) -> io::Result<Served>,
) -> io::Result<Served> {
    let request = match serde_json::from_str::<Request>(line) {
        Ok(request) => request,
        Err(e) => {
            sink.send(&Response::Error(SweepError::schema("request line", e)))?;
            return Ok(Served::Malformed);
        }
    };
    match request {
        Request::Ping => {
            sink.send(&Response::Pong)?;
            Ok(Served::Ping)
        }
        Request::Status => {
            sink.send(&Response::Status(status()))?;
            Ok(Served::Status)
        }
        // Control-plane like `Status`: never touches the gate, so a
        // fully busy server can still be scraped mid-run.
        Request::Metrics => {
            sink.send(&Response::Metrics(telemetry::global().snapshot()))?;
            Ok(Served::Metrics)
        }
        Request::Shutdown => {
            sink.send(&Response::Bye)?;
            Ok(Served::Shutdown)
        }
        Request::Eval(req) => {
            // Every evaluation request received counts — admitted,
            // rejected, or refused — so `requests_total` reconciles
            // with a load generator's sent count. Warm memo hits skip
            // this dispatch entirely and count in `try_handle_warm`.
            telemetry::global().note_request();
            match req.version {
                API_V1 => eval_buffered(req, sink),
                API_V2 => eval_streaming(req, sink),
                other => {
                    sink.send(&Response::Eval(EvalResponse::refusal(
                        req.id.clone(),
                        SweepError::schema(
                            "request envelope",
                            format!(
                                "client speaks version {other}, {speaker} speaks {API_V1} \
                                 (buffered) and {API_V2} (streamed)"
                            ),
                        ),
                    )))?;
                    Ok(Served::Refused { id: req.id })
                }
            }
        }
    }
}

/// The grid label server-side span records aggregate under: the
/// batch's first scenario id (requests built from the named-grid CLI
/// are homogeneous, so one id names the whole batch), or `"empty"`.
pub(crate) fn trace_grid(scenarios: &[Scenario]) -> String {
    scenarios
        .first()
        .map(|s| s.id.clone())
        .unwrap_or_else(|| "empty".into())
}

/// Assembles the buffered v1 warm response line around a batch's
/// pre-serialized `cells` fragment — splicing cached bytes instead of
/// cloning and re-serializing every outcome. Byte-identical to
/// serializing the equivalent [`Response::Eval`] (a unit test pins
/// this): the fast path must not be distinguishable on the wire.
fn warm_eval_line(id: &str, entry: &BatchEntry) -> String {
    use std::fmt::Write as _;
    let id_json = serde_json::to_string(id).expect("string serialization is infallible");
    let n = entry.cells.len();
    let mut line = String::with_capacity(entry.cells_json.len() + id_json.len() + 64);
    let _ = write!(
        line,
        "{{\"Eval\":{{\"version\":{API_V1},\"id\":{id_json},\"cells\":{cells},\"hits\":{n},\"misses\":0,\"error\":null}}}}",
        cells = entry.cells_json,
    );
    line
}

/// The shared admission-rejection path for buffered (v1) requests: a
/// typed `Busy` refusal inside the envelope, with the tally and
/// [`Served`] bookkeeping both endpoints need.
pub(crate) fn reject_buffered(
    sink: &mut dyn FrameSink,
    tally: &Tally,
    id: String,
    retry_after_ms: u64,
) -> io::Result<Served> {
    tally.note_rejected();
    sink.send(&Response::Eval(EvalResponse::refusal(
        id.clone(),
        SweepError::Busy { retry_after_ms },
    )))?;
    Ok(Served::Rejected { id, retry_after_ms })
}

/// The shared admission-rejection path for streamed (v2) requests: one
/// `Busy` frame (also used when a cluster fan-out finds every worker
/// busy after `Accepted` already went out).
pub(crate) fn reject_streaming(
    sink: &mut dyn FrameSink,
    tally: &Tally,
    id: String,
    retry_after_ms: u64,
) -> io::Result<Served> {
    tally.note_rejected();
    sink.send(&Response::Busy {
        id: id.clone(),
        retry_after_ms,
    })?;
    Ok(Served::Rejected { id, retry_after_ms })
}

/// A shared-by-reference adapter over a [`FrameSink`] for streamed
/// responses: frames are emitted from several threads (engine workers,
/// cluster dispatch threads), so sends are serialized through a mutex,
/// and the *first* transport error is latched instead of propagated —
/// later sends become no-ops so the producing computation can finish
/// (its results still land in caches), and the caller surfaces the
/// latched error once the stream is over via [`LatchSink::finish`].
pub(crate) struct LatchSink<'a> {
    inner: Mutex<(&'a mut dyn FrameSink, Option<io::Error>)>,
}

impl<'a> LatchSink<'a> {
    pub(crate) fn new(sink: &'a mut dyn FrameSink) -> Self {
        Self {
            inner: Mutex::new((sink, None)),
        }
    }

    fn dispatch(&self, send: impl FnOnce(&mut dyn FrameSink) -> io::Result<()>) {
        let mut guard = self.inner.lock().expect("sink lock");
        if guard.1.is_some() {
            return;
        }
        if let Err(e) = send(guard.0) {
            guard.1 = Some(e);
        }
    }

    /// Sends one typed frame (no-op once an error is latched).
    pub(crate) fn send(&self, frame: &Response) {
        self.dispatch(|sink| sink.send(frame));
    }

    /// Forwards one already-serialized frame line (no-op once an error
    /// is latched).
    pub(crate) fn send_raw(&self, line: &str) {
        self.dispatch(|sink| sink.send_raw(line));
    }

    /// Hands the sink back along with the first error, if any.
    pub(crate) fn finish(self) -> (&'a mut dyn FrameSink, Option<io::Error>) {
        self.inner.into_inner().expect("sink lock")
    }
}

/// One NDJSON dispatch endpoint: request line in, frames out. Both the
/// single-box [`Runtime`] and the cluster
/// [`Coordinator`](crate::cluster::Coordinator) implement this, so the
/// epoll reactor ([`reactor::serve_reactor`]) serves either without
/// change.
pub trait LineHandler: Send + Sync {
    /// Handles one request line end to end (see
    /// [`Runtime::handle_line_at`]). `received` is when the transport
    /// parsed the line off the wire; deadline checks measure from it.
    fn handle_line_at(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served>;

    /// [`LineHandler::handle_line_at`] with receipt = now, for callers
    /// that dispatch synchronously with the read (in-process tests and
    /// one-shot drivers).
    fn handle_line(&self, line: &str, sink: &mut dyn FrameSink) -> io::Result<Served> {
        self.handle_line_at(line, Instant::now(), sink)
    }

    /// Answers `line` on the calling thread when that cannot involve
    /// compute, or returns `None` (emitting nothing) to defer it to
    /// [`LineHandler::handle_line_at`]. The reactor probes this from
    /// its event thread before paying the worker handoff; the default
    /// defers everything.
    fn try_handle_warm(
        &self,
        _line: &str,
        _received: Instant,
        _sink: &mut dyn FrameSink,
    ) -> Option<io::Result<Served>> {
        None
    }
}

impl LineHandler for Runtime {
    fn handle_line_at(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        Runtime::handle_line_at(self, line, received, sink)
    }

    fn try_handle_warm(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> Option<io::Result<Served>> {
        Runtime::try_handle_warm(self, line, received, sink)
    }
}

/// Binds `addr`, returning the listener and its resolved local address
/// (callers bind port `0` and announce the ephemeral port).
pub fn listen(addr: &str) -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{CellStatus, EvalRequest};
    use crate::cache::ResultCache;
    use crate::scenario::{Scenario, StudyId};

    fn tiny_batch() -> Vec<Scenario> {
        vec![
            Scenario::study(StudyId::Fig9a),
            Scenario::study(StudyId::Table2),
        ]
    }

    fn runtime(depth: usize) -> Runtime {
        Runtime::new(
            Engine::ephemeral(),
            ServeConfig {
                queue_depth: depth,
                jobs: 4,
            },
        )
    }

    fn line(request: &Request) -> String {
        serde_json::to_string(request).expect("request serializes")
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "yoco-serve-runtime-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::at(dir)
    }

    #[test]
    fn gate_admits_to_depth_rejects_beyond_and_releases_on_drop() {
        let gate = Gate::new(2);
        assert_eq!(gate.occupancy(), 0);
        let t1 = gate.try_enter().expect("slot 1");
        assert_eq!(t1.position(), 0);
        let t2 = gate.try_enter().expect("slot 2");
        assert_eq!(t2.position(), 1);
        assert_eq!(gate.occupancy(), 2);

        let busy = gate.try_enter().expect_err("gate is full");
        assert_eq!(
            busy.retry_after_ms,
            RETRY_QUANTUM_MS / 2,
            "cold gate: the prior quantum over two concurrently draining slots"
        );

        drop(t1);
        assert_eq!(gate.occupancy(), 1);
        let t3 = gate.try_enter().expect("freed slot is reusable");
        assert_eq!(t3.position(), 1, "one request still ahead");
        drop(t2);
        drop(t3);
        assert_eq!(gate.occupancy(), 0);
    }

    #[test]
    fn zero_depth_gate_rejects_everything_with_a_floor_hint() {
        let gate = Gate::new(0);
        let busy = gate.try_enter().expect_err("depth 0 admits nothing");
        assert_eq!(busy.retry_after_ms, RETRY_QUANTUM_MS);
    }

    #[test]
    fn retry_hint_converges_to_the_observed_service_time() {
        let gate = Gate::new(2);
        // Cold start: the fixed quantum is the prior.
        assert_eq!(gate.retry_hint_ms(), RETRY_QUANTUM_MS / 2);

        // A steady stream of 1-second requests pulls the EWMA to 1000 ms
        // within a few observations (alpha 0.25: ~3% of the gap left
        // after 12 steps), so the hint converges to 1000 / depth.
        for _ in 0..64 {
            gate.record_service(Duration::from_millis(1000));
        }
        let estimate = gate.service_estimate_ms();
        assert!(
            (estimate - 1000.0).abs() < 1.0,
            "EWMA should converge to the observed 1000 ms, got {estimate}"
        );
        assert_eq!(gate.retry_hint_ms(), 500, "estimate over two slots");

        // Load drops to 10 ms requests: the hint follows back down.
        for _ in 0..64 {
            gate.record_service(Duration::from_millis(10));
        }
        assert_eq!(gate.retry_hint_ms(), 5);

        // The hint is floored at 1 ms even for microsecond services.
        for _ in 0..64 {
            gate.record_service(Duration::from_micros(5));
        }
        assert_eq!(gate.retry_hint_ms(), 1);
    }

    #[test]
    fn dropping_a_ticket_feeds_the_service_ewma() {
        let gate = Gate::new(1);
        assert!(
            gate.service_ewma_ms.lock().unwrap().is_none(),
            "no observations before the first drop"
        );
        drop(gate.try_enter().expect("slot"));
        let observed = gate
            .service_ewma_ms
            .lock()
            .unwrap()
            .expect("one observation");
        assert!(
            observed < RETRY_QUANTUM_MS as f64,
            "an instant request must pull the estimate below the prior"
        );
        assert!(gate.retry_hint_ms() >= 1);
    }

    #[test]
    fn jobs_budget_splits_evenly_with_a_floor_of_one() {
        assert_eq!(split_jobs(8, 0), 8, "idle server: full budget");
        assert_eq!(split_jobs(8, 1), 8);
        assert_eq!(split_jobs(8, 2), 4);
        assert_eq!(split_jobs(8, 3), 2);
        assert_eq!(split_jobs(8, 4), 2);
        assert_eq!(split_jobs(8, 8), 1);
        assert_eq!(split_jobs(8, 100), 1, "never starved below one worker");
        assert_eq!(split_jobs(1, 5), 1);
    }

    #[test]
    fn v2_exchange_streams_accepted_cells_done_in_order() {
        let rt = runtime(2);
        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("s-1", tiny_batch()))),
                &mut frames,
            )
            .expect("sink never fails");
        assert_eq!(
            served,
            Served::Eval {
                id: "s-1".into(),
                cells: 2,
                hits: 0,
                misses: 2,
                streamed: true,
            }
        );
        assert_eq!(frames.len(), 4, "accepted + 2 cells + done: {frames:?}");
        assert_eq!(
            frames[0],
            Response::Accepted {
                id: "s-1".into(),
                position: 0
            }
        );
        let mut cell_ids: Vec<&str> = frames[1..3]
            .iter()
            .map(|f| match f {
                Response::Cell(c) => {
                    assert_eq!(c.status, CellStatus::Computed);
                    assert!(c.metrics.is_some());
                    c.id.as_str()
                }
                other => panic!("expected Cell frames in the middle, got {other:?}"),
            })
            .collect();
        cell_ids.sort_unstable();
        assert_eq!(cell_ids, ["study/fig9a", "study/table2"]);
        assert_eq!(
            frames[3],
            Response::Done {
                id: "s-1".into(),
                hits: 0,
                misses: 2
            }
        );
        assert_eq!(rt.gate().occupancy(), 0, "ticket released after Done");
    }

    #[test]
    fn streamed_cells_carry_the_same_payloads_as_the_buffered_response() {
        let rt = runtime(2);
        let mut streamed: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("s-2", tiny_batch()))),
            &mut streamed,
        )
        .unwrap();
        let mut buffered: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("b-2", tiny_batch()))),
            &mut buffered,
        )
        .unwrap();
        let Some(Response::Eval(buffered)) = buffered.first() else {
            panic!("expected one buffered Eval response, got {buffered:?}");
        };
        let mut streamed_cells: Vec<&CellOutcome> = streamed
            .iter()
            .filter_map(|f| match f {
                Response::Cell(c) => Some(c),
                _ => None,
            })
            .collect();
        streamed_cells.sort_by(|a, b| a.id.cmp(&b.id));
        let mut buffered_cells: Vec<&CellOutcome> = buffered.cells.iter().collect();
        buffered_cells.sort_by(|a, b| a.id.cmp(&b.id));
        assert_eq!(streamed_cells, buffered_cells);
    }

    #[test]
    fn full_gate_rejects_v2_with_busy_and_v1_with_a_typed_refusal() {
        let rt = runtime(1);
        let _held = rt.gate().try_enter().expect("hold the only slot");

        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("s-3", tiny_batch()))),
                &mut frames,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Rejected {
                id: "s-3".into(),
                retry_after_ms: RETRY_QUANTUM_MS
            }
        );
        assert_eq!(
            frames,
            vec![Response::Busy {
                id: "s-3".into(),
                retry_after_ms: RETRY_QUANTUM_MS
            }]
        );

        let mut frames: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("b-3", tiny_batch()))),
            &mut frames,
        )
        .unwrap();
        let Some(Response::Eval(refusal)) = frames.first() else {
            panic!("expected a v1 refusal, got {frames:?}");
        };
        assert_eq!(refusal.id, "b-3");
        assert!(refusal.cells.is_empty());
        assert_eq!(refusal.error.as_ref().unwrap().category(), "busy");

        let status = rt.status();
        assert_eq!(status.rejected, 2, "both rejections counted");
        assert_eq!(status.served, 0);
    }

    #[test]
    fn unknown_versions_get_a_buffered_schema_refusal() {
        let rt = runtime(2);
        let mut req = EvalRequest::new("v-9", tiny_batch());
        req.version = 9;
        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(&line(&Request::Eval(req)), &mut frames)
            .unwrap();
        assert_eq!(
            served,
            Served::Refused { id: "v-9".into() },
            "a version refusal is permanent, not a retryable rejection"
        );
        let Some(Response::Eval(refusal)) = frames.first() else {
            panic!("expected a refusal, got {frames:?}");
        };
        assert_eq!(refusal.id, "v-9");
        assert_eq!(
            refusal.error.as_ref().unwrap().category(),
            "schema-mismatch"
        );
        assert_eq!(rt.gate().occupancy(), 0, "no slot consumed");
    }

    #[test]
    fn control_lines_bypass_the_gate() {
        let rt = runtime(0); // full drain mode: every eval rejected…
        let mut frames: Vec<Response> = Vec::new();
        assert_eq!(
            rt.handle_line("\"Ping\"", &mut frames).unwrap(),
            Served::Ping
        );
        assert_eq!(
            rt.handle_line("\"Status\"", &mut frames).unwrap(),
            Served::Status
        );
        assert_eq!(
            rt.handle_line("\"Shutdown\"", &mut frames).unwrap(),
            Served::Shutdown
        );
        assert_eq!(
            rt.handle_line("not json", &mut frames).unwrap(),
            Served::Malformed
        );
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0], Response::Pong);
        let Response::Status(status) = &frames[1] else {
            panic!("expected a Status report, got {:?}", frames[1]);
        };
        assert_eq!(status.role, "serve");
        assert_eq!(status.queue_depth, 0);
        assert_eq!(frames[2], Response::Bye);
        assert!(matches!(frames[3], Response::Error(_)));
        // …while evals are rejected, not hung.
        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("d-1", tiny_batch()))),
                &mut frames,
            )
            .unwrap();
        assert!(matches!(served, Served::Rejected { .. }));
    }

    #[test]
    fn status_counters_track_served_cells_and_hit_miss_split() {
        let cache = temp_cache("status");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 2,
                jobs: 2,
            },
        );
        let mut frames: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("c-1", tiny_batch()))),
            &mut frames,
        )
        .unwrap();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("c-2", tiny_batch()))),
            &mut frames,
        )
        .unwrap();
        let status = rt.status();
        assert_eq!(status.served, 2);
        assert_eq!(status.cells, 4);
        assert_eq!(status.hits, 2, "second request warm");
        assert_eq!(status.misses, 2, "first request cold");
        assert_eq!(status.occupancy, 0);
        assert_eq!(status.queue_depth, 2);
        assert_eq!(status.jobs, 2);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn warm_memo_replays_batches_without_touching_the_cache() {
        let cache = temp_cache("memo");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 2,
                jobs: 2,
            },
        );
        // Cold run populates cache and memo.
        let mut cold: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("m-1", tiny_batch()))),
            &mut cold,
        )
        .unwrap();

        // Deleting the cache directory proves the warm replay reads the
        // memo, not the disk.
        std::fs::remove_dir_all(cache.dir()).expect("cache dir removable");

        let mut warm: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("m-2", tiny_batch()))),
                &mut warm,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Eval {
                id: "m-2".into(),
                cells: 2,
                hits: 2,
                misses: 0,
                streamed: true,
            }
        );
        // Payloads are identical to the cold run's, statuses are Hit,
        // and frames arrive in scenario order (the memo replays in
        // request order).
        let warm_cells: Vec<&CellOutcome> = warm
            .iter()
            .filter_map(|f| match f {
                Response::Cell(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(warm_cells.len(), 2);
        let ids: Vec<&str> = warm_cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, ["study/fig9a", "study/table2"]);
        for cell in &warm_cells {
            assert_eq!(cell.status, CellStatus::Hit);
            let cold_match = cold.iter().find_map(|f| match f {
                Response::Cell(c) if c.id == cell.id => Some(c),
                _ => None,
            });
            assert_eq!(cold_match.unwrap().metrics, cell.metrics, "{}", cell.id);
        }

        // The buffered path serves the same memo, byte-for-byte stable
        // across repeats.
        let mut v1a: Vec<Response> = Vec::new();
        let mut v1b: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("m-3", tiny_batch()))),
            &mut v1a,
        )
        .unwrap();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("m-3", tiny_batch()))),
            &mut v1b,
        )
        .unwrap();
        let (a, b) = (
            serde_json::to_string(&v1a[0]).unwrap(),
            serde_json::to_string(&v1b[0]).unwrap(),
        );
        assert_eq!(a, b, "memoized v1 responses are byte-stable");
        assert!(a.contains("\"hits\":2,\"misses\":0"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn memo_replays_do_not_pollute_the_service_time_ewma() {
        let cache = temp_cache("memo-ewma");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 1,
                jobs: 2,
            },
        );
        let mut frames: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("e-1", tiny_batch()))),
            &mut frames,
        )
        .unwrap();
        let after_cold = rt.gate().service_estimate_ms();
        // A burst of instant memo replays must not drag the estimate
        // toward zero — the busy hint has to reflect the requests that
        // actually occupy slots.
        for n in 0..32 {
            rt.handle_line(
                &line(&Request::Eval(EvalRequest::streaming(
                    format!("e-w{n}"),
                    tiny_batch(),
                ))),
                &mut frames,
            )
            .unwrap();
        }
        assert_eq!(
            rt.gate().service_estimate_ms(),
            after_cold,
            "memo-served requests are excluded from the EWMA"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn memo_is_off_without_a_cache_and_under_force() {
        // No cache: a repeat request genuinely recomputes (misses), as
        // the warm path must mirror the cache semantics exactly.
        let rt = runtime(2);
        let mut frames: Vec<Response> = Vec::new();
        for id in ["n-1", "n-2"] {
            let served = rt
                .handle_line(
                    &line(&Request::Eval(EvalRequest::streaming(id, tiny_batch()))),
                    &mut frames,
                )
                .unwrap();
            assert_eq!(
                served,
                Served::Eval {
                    id: id.into(),
                    cells: 2,
                    hits: 0,
                    misses: 2,
                    streamed: true,
                },
                "without a cache every run recomputes"
            );
        }

        // With a cache but force=true: the memo is bypassed and the run
        // recomputes (refreshing cache and memo).
        let cache = temp_cache("memo-force");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 2,
                jobs: 2,
            },
        );
        let mut frames: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("f-1", tiny_batch()))),
            &mut frames,
        )
        .unwrap();
        let mut forced = EvalRequest::streaming("f-2", tiny_batch());
        forced.force = true;
        let served = rt
            .handle_line(&line(&Request::Eval(forced)), &mut frames)
            .unwrap();
        assert_eq!(
            served,
            Served::Eval {
                id: "f-2".into(),
                cells: 2,
                hits: 0,
                misses: 2,
                streamed: true,
            },
            "force recomputes even with a warm memo"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn expired_deadlines_answer_busy_without_occupying_a_slot() {
        let rt = runtime(2);
        let stale = Instant::now()
            .checked_sub(Duration::from_millis(50))
            .expect("clock has history");

        // v2: the Busy frame, not a slot.
        let request = EvalRequest::streaming("d-1", tiny_batch()).with_deadline(10);
        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line_at(&line(&Request::Eval(request)), stale, &mut frames)
            .unwrap();
        assert!(
            matches!(served, Served::Rejected { ref id, .. } if id == "d-1"),
            "expired v2 deadline must reject, got {served:?}"
        );
        assert!(
            matches!(frames.first(), Some(Response::Busy { id, .. }) if id == "d-1"),
            "expected a Busy frame, got {frames:?}"
        );
        assert_eq!(rt.gate().occupancy(), 0, "no slot was occupied");

        // v1: the same refusal comes back buffered and typed.
        let request = EvalRequest::new("d-2", tiny_batch()).with_deadline(10);
        let mut frames: Vec<Response> = Vec::new();
        rt.handle_line_at(&line(&Request::Eval(request)), stale, &mut frames)
            .unwrap();
        let Some(Response::Eval(refusal)) = frames.first() else {
            panic!("expected a v1 refusal, got {frames:?}");
        };
        assert_eq!(refusal.error.as_ref().unwrap().category(), "busy");

        // An unexpired deadline admits and evaluates normally.
        let request = EvalRequest::streaming("d-3", tiny_batch()).with_deadline(60_000);
        let mut frames: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(&line(&Request::Eval(request)), &mut frames)
            .unwrap();
        assert_eq!(
            served,
            Served::Eval {
                id: "d-3".into(),
                cells: 2,
                hits: 0,
                misses: 2,
                streamed: true,
            }
        );
        assert_eq!(rt.status().rejected, 2);
    }

    /// A sink capturing raw wire lines: typed frames serialize exactly
    /// as the TCP `LineSink` would, raw lines pass through untouched.
    #[derive(Default)]
    struct RawLines(Vec<String>);

    impl FrameSink for RawLines {
        fn send(&mut self, frame: &Response) -> io::Result<()> {
            self.0
                .push(serde_json::to_string(frame).expect("frame serializes"));
            Ok(())
        }

        fn send_raw(&mut self, line: &str) -> io::Result<()> {
            self.0.push(line.to_string());
            Ok(())
        }
    }

    #[test]
    fn warm_buffered_line_is_byte_identical_to_serde_serialization() {
        let cache = temp_cache("memo-bytes");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 2,
                jobs: 2,
            },
        );
        let mut cold = RawLines::default();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new("b-cold", tiny_batch()))),
            &mut cold,
        )
        .unwrap();

        // The id exercises JSON string escaping in the spliced line.
        let id = "b-warm \"quoted\" \\ ünïcode";
        let mut warm = RawLines::default();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::new(id, tiny_batch()))),
            &mut warm,
        )
        .unwrap();
        assert_eq!(warm.0.len(), 1, "one buffered response line");
        let spliced = &warm.0[0];

        // Parse the spliced line and push it back through serde: the
        // bytes must survive the round trip unchanged, proving the
        // splice is indistinguishable from full serialization.
        let parsed: Response = serde_json::from_str(spliced).expect("warm line parses");
        let Response::Eval(response) = parsed else {
            panic!("expected a buffered Eval response");
        };
        assert_eq!(response.id, id);
        assert_eq!((response.hits, response.misses), (2, 0));
        assert_eq!(response.cells.len(), 2);
        let rebuilt =
            serde_json::to_string(&Response::Eval(response)).expect("response serializes");
        assert_eq!(
            *spliced, rebuilt,
            "spliced warm line must match serde byte-for-byte"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cell_memo_evicts_oldest_entries_at_cap() {
        let mut memo = CellMemo::new(2);
        let scenarios = [
            Scenario::study(StudyId::Fig9a),
            Scenario::study(StudyId::Table2),
            Scenario::study(StudyId::Fig7),
        ];
        for s in &scenarios {
            memo.insert(
                CellMemo::key(s),
                MemoCell {
                    line: format!("frame-{}", s.id),
                    outcome_json: format!("outcome-{}", s.id),
                },
            );
        }
        assert_eq!(memo.len(), 2, "cap bounds the entry count");
        assert!(
            memo.lookup_all(&scenarios[1..]).is_some(),
            "the two newest entries survive"
        );
        assert!(
            memo.lookup_all(&scenarios[..1]).is_none(),
            "the oldest entry was evicted first"
        );

        // Re-inserting a live key replaces in place: nothing else is
        // evicted and the count stays at cap.
        memo.insert(
            CellMemo::key(&scenarios[1]),
            MemoCell {
                line: "frame-refreshed".into(),
                outcome_json: "outcome-refreshed".into(),
            },
        );
        assert_eq!(memo.len(), 2);
        let cells = memo
            .lookup_all(&scenarios[1..2])
            .expect("refreshed key still present");
        assert_eq!(cells[0].line, "frame-refreshed");
        assert!(
            memo.lookup_all(&scenarios[2..]).is_some(),
            "replacing a live key must not evict its neighbour"
        );
    }

    #[test]
    fn overlapping_batches_share_per_cell_memo_entries() {
        let cache = temp_cache("memo-overlap");
        let rt = Runtime::new(
            Engine::ephemeral().with_cache(cache.clone()),
            ServeConfig {
                queue_depth: 2,
                jobs: 2,
            },
        );
        // Batch A computes {Fig9a, Table2} and memoizes each cell.
        let mut cold: Vec<Response> = Vec::new();
        rt.handle_line(
            &line(&Request::Eval(EvalRequest::streaming("o-1", tiny_batch()))),
            &mut cold,
        )
        .unwrap();

        // Deleting the cache dir proves the overlap is served from the
        // memo, not the disk.
        std::fs::remove_dir_all(cache.dir()).expect("cache dir removable");

        // Batch B is a different batch that overlaps A in Table2 only.
        // Under per-batch keying this would be a full recompute; with
        // per-cell keys the shared cell replays warm.
        let sub = vec![Scenario::study(StudyId::Table2)];
        let mut warm: Vec<Response> = Vec::new();
        let served = rt
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("o-2", sub.clone()))),
                &mut warm,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Eval {
                id: "o-2".into(),
                cells: 1,
                hits: 1,
                misses: 0,
                streamed: true,
            },
            "the overlapping cell must come out of the memo"
        );
        let Some(Response::Cell(cell)) = warm.iter().find(|f| matches!(f, Response::Cell(_)))
        else {
            panic!("expected a Cell frame, got {warm:?}");
        };
        let cold_match = cold.iter().find_map(|f| match f {
            Response::Cell(c) if c.id == cell.id => Some(c),
            _ => None,
        });
        assert_eq!(
            cold_match.unwrap().metrics,
            cell.metrics,
            "the shared cell replays batch A's payload"
        );

        // The buffered protocol shares the same per-cell entries.
        let mut v1: Vec<Response> = Vec::new();
        rt.handle_line(&line(&Request::Eval(EvalRequest::new("o-3", sub))), &mut v1)
            .unwrap();
        let Some(Response::Eval(response)) = v1.first() else {
            panic!("expected a buffered response, got {v1:?}");
        };
        assert_eq!(response.hits, 1);
        assert_eq!(response.misses, 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn raw_frames_decode_through_the_default_sink_path() {
        let mut frames: Vec<Response> = Vec::new();
        let sink: &mut dyn FrameSink = &mut frames;
        sink.send_raw("\"Pong\"").unwrap();
        assert!(sink.send_raw("not a frame").is_err());
        assert_eq!(frames, vec![Response::Pong]);
    }
}

/// Ignored-by-default timing probes for the warm fast path. Run with
/// `cargo test -p yoco-sweep --release -- --ignored microbench` when
/// chasing a serve-bench regression: the request parse dominates, and
/// the batch fingerprint must stay orders of magnitude below it.
#[cfg(test)]
mod microbench {
    use super::*;
    use crate::api::{EvalRequest, Request};
    use crate::grids;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn warm_path_piece_timings() {
        let scenarios = grids::resolve("fig8").expect("grid");
        let req = EvalRequest::new("bench", scenarios.clone());
        let line = serde_json::to_string(&Request::Eval(req)).unwrap();
        eprintln!("request line bytes: {}", line.len());
        let n = 2000;
        let t = Instant::now();
        for _ in 0..n {
            let _ = serde_json::from_str::<Request>(&line).unwrap();
        }
        eprintln!("parse request: {:?}/iter", t.elapsed() / n);
        let t = Instant::now();
        for _ in 0..n {
            let _ = BatchMemo::key(&scenarios);
        }
        eprintln!("batch key: {:?}/iter", t.elapsed() / n);
        let t = Instant::now();
        for _ in 0..n {
            let c = scenarios.iter().map(CellMemo::key).collect::<Vec<_>>();
            std::hint::black_box(c);
        }
        eprintln!("per-cell keys: {:?}/iter", t.elapsed() / n);
    }
}
