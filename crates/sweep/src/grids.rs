//! Named scenario grids for the CLI and library callers.

use crate::api::SweepError;
use crate::figures;
use crate::scenario::{Scenario, StudyId};

/// All named grids: `(name, description)`.
pub const NAMED: [(&str, &str); 6] = [
    ("fig8", "chip comparison: 4 accelerators × 10-model zoo"),
    ("fig10", "attention-pipeline speedup on 5 transformers"),
    ("ablations", "the 5 ablation studies"),
    ("figures", "every single-shot figure/table study"),
    ("studies", "alias of `figures`"),
    ("all", "fig8 + fig10 + every study"),
];

/// The study-only portion of a grid name, if any.
fn study_ids(name: &str) -> Option<Vec<StudyId>> {
    match name {
        "ablations" => Some(
            StudyId::ALL
                .into_iter()
                .filter(|s| s.name().starts_with("ablation-"))
                .collect(),
        ),
        "figures" | "studies" => Some(StudyId::ALL.to_vec()),
        _ => None,
    }
}

/// Resolves a grid name to scenarios. Accepts the named grids, any single
/// study name (e.g. `fig6d`), or `yoco/<model>`-style single GEMM cells.
pub fn resolve(name: &str) -> Result<Vec<Scenario>, SweepError> {
    if let Some(studies) = study_ids(name) {
        return Ok(studies.into_iter().map(Scenario::study).collect());
    }
    match name {
        "fig8" => Ok(figures::fig8_scenarios()),
        "fig10" => Ok(figures::fig10_scenarios()),
        "all" => {
            let mut out = figures::fig8_scenarios();
            out.extend(figures::fig10_scenarios());
            out.extend(StudyId::ALL.into_iter().map(Scenario::study));
            Ok(out)
        }
        other => {
            if let Some(study) = StudyId::from_name(other) {
                return Ok(vec![Scenario::study(study)]);
            }
            if let Some((acc, model)) = other.split_once('/') {
                if let Some(acc) = crate::scenario::AcceleratorKind::from_name(acc) {
                    return Ok(vec![Scenario::gemm(
                        acc,
                        crate::scenario::DesignPoint::paper(),
                        crate::scenario::WorkloadSpec::Zoo {
                            model: model.to_owned(),
                        },
                    )]);
                }
            }
            Err(SweepError::UnknownGrid {
                name: other.to_owned(),
                known: format!(
                    "{}, a study name, or accelerator/model",
                    NAMED.map(|(n, _)| n).join(", ")
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_grids_resolve() {
        assert_eq!(resolve("fig8").unwrap().len(), 40);
        assert_eq!(resolve("fig10").unwrap().len(), 5);
        assert_eq!(resolve("ablations").unwrap().len(), 5);
        assert_eq!(resolve("figures").unwrap().len(), 18);
        assert_eq!(resolve("all").unwrap().len(), 63);
        assert_eq!(resolve("fig6d").unwrap().len(), 1);
        assert_eq!(resolve("fig1c").unwrap().len(), 1);
        assert_eq!(resolve("breakdown").unwrap().len(), 1);
        assert_eq!(resolve("yoco/resnet18").unwrap().len(), 1);
        let err = resolve("nonsense").unwrap_err();
        assert_eq!(err.category(), "unknown-grid");
    }
}
