//! Named scenario grids for the CLI and library callers, including the
//! design-space-exploration (DSE) grids consumed by the `yoco-dse` crate.
//!
//! Every named grid lives in one [`REGISTRY`] table, so the listing
//! (`sweep list`, [`named`]) and the resolver ([`resolve`]) cannot drift:
//! both walk the same entries.

use crate::api::SweepError;
use crate::figures;
use crate::scenario::{AcceleratorKind, DesignPoint, Scenario, StudyId, WorkloadSpec};

/// One named grid: its CLI name, a one-line description, and the builder
/// producing its scenarios.
#[derive(Clone, Copy)]
pub struct GridSpec {
    /// CLI/report name (`sweep run <name>`).
    pub name: &'static str,
    /// One-line description for listings.
    pub desc: &'static str,
    build: fn() -> Vec<Scenario>,
}

impl GridSpec {
    /// Builds the grid's scenarios.
    pub fn scenarios(&self) -> Vec<Scenario> {
        (self.build)()
    }
}

/// The single source of truth for named grids: `sweep list`, `resolve`,
/// `yoco-serve` clients, and `yoco-dse` all read this table.
pub const REGISTRY: &[GridSpec] = &[
    GridSpec {
        name: "fig8",
        desc: "chip comparison: 4 accelerators × 10-model zoo",
        build: figures::fig8_scenarios,
    },
    GridSpec {
        name: "fig10",
        desc: "attention-pipeline speedup on 5 transformers",
        build: figures::fig10_scenarios,
    },
    GridSpec {
        name: "ablations",
        desc: "the 5 ablation studies",
        build: ablation_scenarios,
    },
    GridSpec {
        name: "figures",
        desc: "every single-shot figure/table study",
        build: study_scenarios,
    },
    GridSpec {
        name: "studies",
        desc: "alias of `figures`",
        build: study_scenarios,
    },
    GridSpec {
        name: "all",
        desc: "fig8 + fig10 + every study",
        build: all_scenarios,
    },
    GridSpec {
        name: "dse-tiles",
        desc: "DSE: tile count 1..16 × the DSE workload pair",
        build: || dse_scenarios("dse-tiles"),
    },
    GridSpec {
        name: "dse-stack",
        desc: "DSE: IMA array grid (stack × width) 2..16 each",
        build: || dse_scenarios("dse-stack"),
    },
    GridSpec {
        name: "dse-ima-mix",
        desc: "DSE: dynamic/static IMA split per tile",
        build: || dse_scenarios("dse-ima-mix"),
    },
    GridSpec {
        name: "dse-activity",
        desc: "DSE: MCC activation probability 0.1..1.0",
        build: || dse_scenarios("dse-activity"),
    },
    GridSpec {
        name: "dse-full",
        desc: "DSE: coarse product over all five knob axes",
        build: || dse_scenarios("dse-full"),
    },
];

/// `(name, description)` of every named grid, in registry order.
pub fn named() -> impl Iterator<Item = (&'static str, &'static str)> {
    REGISTRY.iter().map(|g| (g.name, g.desc))
}

fn ablation_scenarios() -> Vec<Scenario> {
    StudyId::ALL
        .into_iter()
        .filter(|s| s.name().starts_with("ablation-"))
        .map(Scenario::study)
        .collect()
}

fn study_scenarios() -> Vec<Scenario> {
    StudyId::ALL.into_iter().map(Scenario::study).collect()
}

fn all_scenarios() -> Vec<Scenario> {
    let mut out = figures::fig8_scenarios();
    out.extend(figures::fig10_scenarios());
    out.extend(study_scenarios());
    out
}

fn dse_scenarios(name: &str) -> Vec<Scenario> {
    DseGrid::find(name)
        .expect("registry names match DSE_GRIDS")
        .scenarios()
}

/// Resolves a grid name to scenarios. Accepts every [`REGISTRY`] grid, any
/// single study name (e.g. `fig6d`), or `yoco/<model>`-style single GEMM
/// cells.
pub fn resolve(name: &str) -> Result<Vec<Scenario>, SweepError> {
    if let Some(grid) = REGISTRY.iter().find(|g| g.name == name) {
        return Ok(grid.scenarios());
    }
    if let Some(study) = StudyId::from_name(name) {
        return Ok(vec![Scenario::study(study)]);
    }
    if let Some((acc, model)) = name.split_once('/') {
        if let Some(acc) = AcceleratorKind::from_name(acc) {
            return Ok(vec![Scenario::gemm(
                acc,
                DesignPoint::paper(),
                WorkloadSpec::Zoo {
                    model: model.to_owned(),
                },
            )]);
        }
    }
    let known: Vec<&str> = REGISTRY.iter().map(|g| g.name).collect();
    Err(SweepError::UnknownGrid {
        name: name.to_owned(),
        known: format!("{}, a study name, or accelerator/model", known.join(", ")),
    })
}

// ---------------------------------------------------------------------------
// DSE grids: Cartesian products of DesignPoint knobs × a fixed workload set
// ---------------------------------------------------------------------------

/// The workload pair every DSE grid evaluates: one CNN and one
/// attention-heavy transformer from the Fig 8 zoo, so a design point is
/// scored on both static-weight and dynamic-weight behavior without
/// paying for the whole zoo per point.
pub const DSE_WORKLOADS: [&str; 2] = ["resnet18", "qdqbert"];

/// Axis values a DSE grid explores, one slice per [`DesignPoint`] knob.
/// An empty slice locks the knob at the paper default. The dynamic/static
/// IMA split varies as one axis (`ima_mix`) because its two knobs only
/// make sense together.
#[derive(Debug, Clone, Copy)]
pub struct DseGrid {
    /// Grid name (`dse-…`), also registered in [`REGISTRY`].
    pub name: &'static str,
    /// Tile counts to explore.
    pub tiles: &'static [usize],
    /// Vertical array stacks per IMA to explore.
    pub ima_stack: &'static [usize],
    /// Horizontal array counts per IMA to explore.
    pub ima_width: &'static [usize],
    /// `(dimas, simas)` splits per tile to explore.
    pub ima_mix: &'static [(usize, usize)],
    /// MCC activation probabilities to explore.
    pub activity: &'static [f64],
}

/// The five DSE grids, in registry order.
pub const DSE_GRIDS: [DseGrid; 5] = [
    DseGrid {
        name: "dse-tiles",
        tiles: &[1, 2, 4, 8, 16],
        ima_stack: &[],
        ima_width: &[],
        ima_mix: &[],
        activity: &[],
    },
    DseGrid {
        name: "dse-stack",
        tiles: &[],
        ima_stack: &[2, 4, 8, 16],
        ima_width: &[2, 4, 8, 16],
        ima_mix: &[],
        activity: &[],
    },
    DseGrid {
        name: "dse-ima-mix",
        tiles: &[],
        ima_stack: &[],
        ima_width: &[],
        ima_mix: &[(0, 8), (2, 6), (4, 4), (6, 2), (8, 0)],
        activity: &[],
    },
    DseGrid {
        name: "dse-activity",
        tiles: &[],
        ima_stack: &[],
        ima_width: &[],
        ima_mix: &[],
        activity: &[0.1, 0.25, 0.5, 0.75, 1.0],
    },
    DseGrid {
        name: "dse-full",
        tiles: &[2, 4, 8],
        ima_stack: &[4, 8],
        ima_width: &[4, 8],
        ima_mix: &[(2, 6), (4, 4), (6, 2)],
        activity: &[0.25, 0.5],
    },
];

/// Number of knob axes a [`DseGrid`] spans (coordinates are `[usize; 5]`).
pub const DSE_AXES: usize = 5;

impl DseGrid {
    /// Looks a DSE grid up by name.
    pub fn find(name: &str) -> Option<&'static DseGrid> {
        DSE_GRIDS.iter().find(|g| g.name == name)
    }

    /// Length of each axis, counting a locked (empty) axis as 1 so the
    /// coordinate space is always 5-dimensional.
    pub fn axis_lens(&self) -> [usize; DSE_AXES] {
        [
            self.tiles.len().max(1),
            self.ima_stack.len().max(1),
            self.ima_width.len().max(1),
            self.ima_mix.len().max(1),
            self.activity.len().max(1),
        ]
    }

    /// Total number of design points in the grid.
    pub fn total_designs(&self) -> usize {
        self.axis_lens().iter().product()
    }

    /// The design point at the given coordinates (one index per axis;
    /// locked axes only accept index 0). Explored values restating the
    /// paper default normalize away, so the paper cell shares its cache
    /// key with non-DSE scenarios.
    pub fn design_at(&self, coords: [usize; DSE_AXES]) -> DesignPoint {
        let pick = |axis: &'static [usize], i: usize| axis.get(i).copied();
        DesignPoint {
            tiles: pick(self.tiles, coords[0]),
            ima_stack: pick(self.ima_stack, coords[1]),
            ima_width: pick(self.ima_width, coords[2]),
            dimas_per_tile: self.ima_mix.get(coords[3]).map(|m| m.0),
            simas_per_tile: self.ima_mix.get(coords[3]).map(|m| m.1),
            activity: self.activity.get(coords[4]).copied(),
        }
        .normalized()
    }

    /// Unflattens a design index (row-major over [`DseGrid::axis_lens`])
    /// into coordinates. The inverse of the canonical enumeration order.
    pub fn coords_of(&self, mut index: usize) -> [usize; DSE_AXES] {
        let lens = self.axis_lens();
        let mut coords = [0; DSE_AXES];
        for axis in (0..DSE_AXES).rev() {
            coords[axis] = index % lens[axis];
            index /= lens[axis];
        }
        coords
    }

    /// Every design point, in canonical (row-major) order.
    pub fn designs(&self) -> Vec<DesignPoint> {
        (0..self.total_designs())
            .map(|i| self.design_at(self.coords_of(i)))
            .collect()
    }

    /// The GEMM scenarios of one design point: one cell per DSE workload,
    /// ids shaped `dse/<design-label>/<model>`.
    pub fn scenarios_for(&self, design: DesignPoint) -> Vec<Scenario> {
        let label = design.label();
        DSE_WORKLOADS
            .iter()
            .map(|model| {
                let mut s = Scenario::gemm(
                    AcceleratorKind::Yoco,
                    design,
                    WorkloadSpec::Zoo {
                        model: (*model).to_owned(),
                    },
                );
                s.id = format!("dse/{label}/{model}");
                s
            })
            .collect()
    }

    /// The whole grid as scenarios, designs in canonical order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.designs()
            .into_iter()
            .flat_map(|d| self.scenarios_for(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_grids_resolve() {
        assert_eq!(resolve("fig8").unwrap().len(), 40);
        assert_eq!(resolve("fig10").unwrap().len(), 5);
        assert_eq!(resolve("ablations").unwrap().len(), 5);
        assert_eq!(resolve("figures").unwrap().len(), 18);
        assert_eq!(resolve("all").unwrap().len(), 63);
        assert_eq!(resolve("fig6d").unwrap().len(), 1);
        assert_eq!(resolve("fig1c").unwrap().len(), 1);
        assert_eq!(resolve("breakdown").unwrap().len(), 1);
        assert_eq!(resolve("yoco/resnet18").unwrap().len(), 1);
        let err = resolve("nonsense").unwrap_err();
        assert_eq!(err.category(), "unknown-grid");
    }

    #[test]
    fn registry_is_the_single_source_of_truth() {
        // Every listed grid resolves, to exactly what its spec builds…
        for grid in REGISTRY {
            let resolved = resolve(grid.name).unwrap_or_else(|e| panic!("{}: {e}", grid.name));
            assert!(!resolved.is_empty(), "{} is empty", grid.name);
            assert_eq!(resolved, grid.scenarios(), "{} drifted", grid.name);
        }
        // …every listing row comes from the registry…
        let listed: Vec<&str> = named().map(|(n, _)| n).collect();
        let registered: Vec<&str> = REGISTRY.iter().map(|g| g.name).collect();
        assert_eq!(listed, registered);
        // …and names are unique, so the resolver cannot shadow an entry.
        let mut unique = listed.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), listed.len(), "duplicate grid names");
    }

    #[test]
    fn every_dse_grid_is_registered_and_valid() {
        for grid in &DSE_GRIDS {
            assert!(
                REGISTRY.iter().any(|g| g.name == grid.name),
                "{} missing from REGISTRY",
                grid.name
            );
            let scenarios = grid.scenarios();
            assert_eq!(scenarios.len(), grid.total_designs() * DSE_WORKLOADS.len());
            for s in &scenarios {
                s.validate()
                    .unwrap_or_else(|e| panic!("{}: {}: {e}", grid.name, s.id));
            }
        }
    }

    #[test]
    fn dse_grid_sizes_match_their_axes() {
        assert_eq!(DseGrid::find("dse-tiles").unwrap().total_designs(), 5);
        assert_eq!(DseGrid::find("dse-stack").unwrap().total_designs(), 16);
        assert_eq!(DseGrid::find("dse-ima-mix").unwrap().total_designs(), 5);
        assert_eq!(DseGrid::find("dse-activity").unwrap().total_designs(), 5);
        assert_eq!(DseGrid::find("dse-full").unwrap().total_designs(), 72);
        assert!(DseGrid::find("dse-nonsense").is_none());
    }

    #[test]
    fn coords_round_trip_and_cover_the_grid() {
        let grid = DseGrid::find("dse-full").unwrap();
        let designs = grid.designs();
        assert_eq!(designs.len(), 72);
        // Distinct coordinates produce distinct designs (no axis collapses).
        let mut keys: Vec<String> = designs.iter().map(|d| format!("{d:?}")).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 72);
        // The paper point is in the grid and normalizes to all-None.
        let paper_idx = designs.iter().position(|d| d.is_paper());
        assert!(paper_idx.is_some(), "dse-full must contain the paper point");
    }
}
