//! Scenario evaluation: the one place a descriptor becomes numbers.
//!
//! Evaluation is a pure function of the scenario (all simulations are
//! seeded), which is what makes content-addressed caching sound. Since
//! the API redesign it returns a typed [`Metrics`] payload and a
//! structured [`SweepError`] instead of raw JSON and strings.

use crate::api::{Metrics, SweepError};
use crate::scenario::{AcceleratorKind, ScenarioKind};
use serde::{Deserialize, Serialize};
use yoco::pipeline::{AttentionDims, AttentionPipeline};
use yoco::YocoChip;
use yoco_arch::accelerator::{Accelerator, LayerCost};
use yoco_baselines::{isaac::isaac, raella::raella, timely::timely};

/// Payload of a GEMM cell: whole-model totals (the Fig 8 inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmMetrics {
    /// Accelerator report name.
    pub accelerator: String,
    /// Workload label (zoo model or ad-hoc GEMM name).
    pub workload: String,
    /// Accumulated cost over all layers.
    pub total: LayerCost,
}

impl GemmMetrics {
    /// Energy efficiency, TOPS/W.
    pub fn tops_per_watt(&self) -> f64 {
        self.total.tops_per_watt()
    }

    /// Throughput, TOPS.
    pub fn tops(&self) -> f64 {
        self.total.tops()
    }
}

/// Payload of an attention-pipeline cell (the Fig 10 inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionMetrics {
    /// Transformer name.
    pub model: String,
    /// Attention dimensions simulated.
    pub dims: AttentionDims,
    /// Layer-wise attention latency, ns.
    pub layerwise_ns: f64,
    /// Pipelined attention latency, ns.
    pub pipelined_ns: f64,
    /// Pipelining speedup.
    pub speedup: f64,
}

/// Evaluates one scenario to its typed payload.
///
/// Resolution *is* validation here — workload and design resolve exactly
/// once, and the cheap guards ([`crate::scenario`]'s baseline/dims
/// checks, shared with [`ScenarioKind::validate`]) run inline, so a cell
/// that went through [`crate::api::ScenarioBuilder`] pays nothing twice.
pub fn evaluate(kind: &ScenarioKind) -> Result<Metrics, SweepError> {
    match kind {
        ScenarioKind::Gemm {
            accelerator,
            design,
            workload,
        } => {
            crate::scenario::baseline_design_guard(*accelerator, design, workload.label())?;
            let workloads = workload.resolve()?;
            let label = workload.label().to_owned();
            let report = match accelerator {
                AcceleratorKind::Yoco => {
                    let chip = YocoChip::new(design.resolve()?);
                    chip.evaluate_model(&label, &workloads)
                }
                baseline => {
                    // The guard above rejected non-paper designs here.
                    let b: Box<dyn Accelerator> = match baseline {
                        AcceleratorKind::Isaac => Box::new(isaac()),
                        AcceleratorKind::Raella => Box::new(raella()),
                        AcceleratorKind::Timely => Box::new(timely()),
                        AcceleratorKind::Yoco => unreachable!("handled above"),
                    };
                    b.evaluate_model(&label, &workloads)
                }
            };
            Ok(Metrics::Gemm(GemmMetrics {
                accelerator: accelerator.name().to_owned(),
                workload: label,
                total: report.total,
            }))
        }
        ScenarioKind::Attention {
            model,
            dims,
            design,
        } => {
            crate::scenario::attention_dims_guard(model, dims)?;
            let pipeline = AttentionPipeline::new(design.resolve()?);
            let r = pipeline.simulate(dims);
            Ok(Metrics::Attention(AttentionMetrics {
                model: model.clone(),
                dims: *dims,
                layerwise_ns: r.layerwise_ns,
                pipelined_ns: r.pipelined_ns,
                speedup: r.speedup(),
            }))
        }
        ScenarioKind::Study { study } => crate::studies::run(*study).map(Metrics::Study),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DesignPoint, Scenario, WorkloadSpec};
    use yoco_arch::workload::LayerKind;

    #[test]
    fn gemm_cell_matches_direct_evaluation() {
        let s = Scenario::gemm(
            AcceleratorKind::Isaac,
            DesignPoint::paper(),
            WorkloadSpec::Gemm {
                name: "fc".into(),
                m: 16,
                k: 512,
                n: 512,
                kind: LayerKind::Linear,
            },
        );
        let metrics = evaluate(&s.kind).unwrap();
        let gemm = metrics.as_gemm().expect("a GEMM cell");
        let direct = isaac().evaluate_model(
            "fc",
            &[yoco_arch::workload::MatmulWorkload::new("fc", 16, 512, 512)],
        );
        assert_eq!(gemm.total, direct.total);
        assert_eq!(gemm.accelerator, "isaac");
    }

    #[test]
    fn design_overrides_on_baselines_are_rejected() {
        let kind = ScenarioKind::Gemm {
            accelerator: AcceleratorKind::Timely,
            design: DesignPoint {
                tiles: Some(2),
                ..Default::default()
            },
            workload: WorkloadSpec::Gemm {
                name: "fc".into(),
                m: 1,
                k: 128,
                n: 32,
                kind: LayerKind::Linear,
            },
        };
        let err = evaluate(&kind).unwrap_err();
        assert!(err.to_string().contains("only apply to yoco"), "{err}");
        assert_eq!(err.category(), "invalid-scenario");
    }

    #[test]
    fn attention_cell_matches_direct_simulation() {
        let dims = AttentionDims {
            seq: 128,
            d_model: 512,
            heads: 4,
        };
        let s = Scenario::attention("mobilebert", dims, DesignPoint::paper());
        let metrics = evaluate(&s.kind).unwrap();
        let m = metrics.as_attention().expect("an attention cell");
        let direct = AttentionPipeline::new(yoco::YocoConfig::paper_default()).simulate(&dims);
        assert_eq!(m.layerwise_ns, direct.layerwise_ns);
        assert_eq!(m.pipelined_ns, direct.pipelined_ns);
        assert!(m.speedup > 1.0);
    }
}
