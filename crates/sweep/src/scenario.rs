//! Declarative scenario descriptors: what to evaluate, on which
//! accelerator, at which design point.
//!
//! A [`Scenario`] is a serde-backed value — grids can be built in code via
//! [`crate::grids`], or loaded from JSON files by the `sweep` CLI. The
//! engine treats a scenario as a pure function input: its content hash is
//! the cache key, so two textually different invocations that resolve to
//! the same scenario share one cache entry.

use crate::api::SweepError;
use crate::hash;
use serde::{Deserialize, Serialize};
use yoco::pipeline::AttentionDims;
use yoco::YocoConfig;
use yoco_arch::workload::{LayerKind, MatmulWorkload};

/// Which accelerator model evaluates the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// The paper's chip (the only one that honors [`DesignPoint`]).
    Yoco,
    /// ISAAC baseline.
    Isaac,
    /// RAELLA baseline.
    Raella,
    /// TIMELY baseline.
    Timely,
}

impl AcceleratorKind {
    /// All four, in the paper's comparison order (YOCO first).
    pub const ALL: [AcceleratorKind; 4] = [
        AcceleratorKind::Yoco,
        AcceleratorKind::Isaac,
        AcceleratorKind::Raella,
        AcceleratorKind::Timely,
    ];

    /// Short lowercase name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorKind::Yoco => "yoco",
            AcceleratorKind::Isaac => "isaac",
            AcceleratorKind::Raella => "raella",
            AcceleratorKind::Timely => "timely",
        }
    }

    /// Parses a report name back.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Overrides over the Table II design point. `None` keeps the paper value.
///
/// Only YOCO cells honor these; handing a non-default design point to a
/// baseline accelerator is an evaluation error (silently ignoring it would
/// poison the cache key space).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Arrays stacked vertically per IMA.
    pub ima_stack: Option<usize>,
    /// Arrays placed horizontally per IMA.
    pub ima_width: Option<usize>,
    /// Dynamic (SRAM) IMAs per tile.
    pub dimas_per_tile: Option<usize>,
    /// Static (ReRAM) IMAs per tile.
    pub simas_per_tile: Option<usize>,
    /// Tiles per chip.
    pub tiles: Option<usize>,
    /// MCC activation probability.
    pub activity: Option<f64>,
}

impl DesignPoint {
    /// The unmodified Table II design point.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Whether every knob is at the paper default (explicit restatements
    /// of a default count as default).
    pub fn is_paper(&self) -> bool {
        self.normalized() == Self::default()
    }

    /// Drops overrides that restate the paper default, so semantically
    /// identical scenarios hash to one cache key and baseline cells
    /// accept explicit-but-default design blocks.
    pub fn normalized(&self) -> Self {
        let base = YocoConfig::paper_default();
        Self {
            ima_stack: self.ima_stack.filter(|&v| v != base.ima_stack),
            ima_width: self.ima_width.filter(|&v| v != base.ima_width),
            dimas_per_tile: self.dimas_per_tile.filter(|&v| v != base.dimas_per_tile),
            simas_per_tile: self.simas_per_tile.filter(|&v| v != base.simas_per_tile),
            tiles: self.tiles.filter(|&v| v != base.tiles),
            activity: self.activity.filter(|&v| v != base.activity),
        }
    }

    /// Compact human-readable knob summary built from the *resolved*
    /// values, e.g. the paper point is `t4-s8x8-m4+4-a50` (tiles,
    /// stack×width, dimas+simas, activity %). Normalized-equal points
    /// share a label; activity rounds to whole percent, which DSE axes
    /// keep distinct.
    pub fn label(&self) -> String {
        let base = YocoConfig::paper_default();
        format!(
            "t{}-s{}x{}-m{}+{}-a{}",
            self.tiles.unwrap_or(base.tiles),
            self.ima_stack.unwrap_or(base.ima_stack),
            self.ima_width.unwrap_or(base.ima_width),
            self.dimas_per_tile.unwrap_or(base.dimas_per_tile),
            self.simas_per_tile.unwrap_or(base.simas_per_tile),
            (self.activity.unwrap_or(base.activity) * 100.0).round() as u32
        )
    }

    /// Resolves the overrides into a validated [`YocoConfig`].
    pub fn resolve(&self) -> Result<YocoConfig, SweepError> {
        let mut b = YocoConfig::builder();
        if let Some(v) = self.ima_stack {
            b = b.ima_stack(v);
        }
        if let Some(v) = self.ima_width {
            b = b.ima_width(v);
        }
        let base = YocoConfig::paper_default();
        let dimas = self.dimas_per_tile.unwrap_or(base.dimas_per_tile);
        let simas = self.simas_per_tile.unwrap_or(base.simas_per_tile);
        b = b.ima_split(dimas, simas);
        if let Some(v) = self.tiles {
            b = b.tiles(v);
        }
        if let Some(v) = self.activity {
            b = b.activity(v);
        }
        b.build()
            .map_err(|e| SweepError::invalid("design-point", e))
    }
}

/// Which workload a GEMM cell evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A model from the Fig 8 zoo, by name (all its GEMM layers).
    Zoo {
        /// Zoo model name (`"resnet18"`, `"qdqbert"`, …).
        model: String,
    },
    /// A single ad-hoc GEMM.
    Gemm {
        /// Workload name for reports.
        name: String,
        /// Activation rows.
        m: u64,
        /// Contraction dimension.
        k: u64,
        /// Output columns.
        n: u64,
        /// Layer kind (drives the dynamic-weight penalty).
        kind: LayerKind,
    },
}

impl WorkloadSpec {
    /// Display label for the cell.
    pub fn label(&self) -> &str {
        match self {
            WorkloadSpec::Zoo { model } => model,
            WorkloadSpec::Gemm { name, .. } => name,
        }
    }

    /// Lowers to the concrete GEMM sequence.
    pub fn resolve(&self) -> Result<Vec<MatmulWorkload>, SweepError> {
        match self {
            WorkloadSpec::Zoo { model } => {
                let zoo = yoco_nn::models::fig8_benchmarks();
                let found = zoo.into_iter().find(|m| m.name == *model).ok_or_else(|| {
                    SweepError::workload(model.clone(), "not in the zoo (run `sweep list`)")
                })?;
                Ok(found.workloads())
            }
            WorkloadSpec::Gemm {
                name,
                m,
                k,
                n,
                kind,
            } => {
                if *m == 0 || *k == 0 || *n == 0 {
                    return Err(SweepError::workload(
                        name.clone(),
                        format!("GEMM dimensions must be positive, got {m}x{k}x{n}"),
                    ));
                }
                Ok(vec![MatmulWorkload::new(name, *m, *k, *n).with_kind(*kind)])
            }
        }
    }
}

/// Named single-shot studies: every figure/table computation that is not a
/// (accelerator × workload) grid. Each is pure and therefore cacheable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StudyId {
    /// Fig 1(c): throughput-vs-efficiency scatter of recent IMC macros.
    Fig1c,
    /// Fig 6(a): input-conversion transfer curve with INL/DNL.
    Fig6a,
    /// Fig 6(b)/(c): 8-bit MAC transfer curves and errors, 128 channels.
    Fig6bc,
    /// Fig 6(d): 2000-run Monte-Carlo voltage-offset distribution.
    Fig6d,
    /// Fig 6(e): end-to-end MAC error vs prior designs.
    Fig6e,
    /// Fig 6(f): DNN inference accuracy, FP32 vs YOCO-based.
    Fig6f,
    /// Fig 7: YOCO IMA vs eight prior IMC macros.
    Fig7,
    /// Fig 9(a): DAC overhead ratios.
    Fig9a,
    /// Fig 9(b): ADC conversions per 8-bit MAC output.
    Fig9b,
    /// Table I: the ADCs/DACs cost taxonomy.
    Table1,
    /// Table II: the derived YOCO parameter summary.
    Table2,
    /// The Fig 8 model zoo at a glance: GEMM counts, MACs, placement.
    Models,
    /// Per-component energy breakdown, YOCO vs ISAAC's converter share.
    Breakdown,
    /// Ablation: input bit-slicing (charge-once vs bit-serial).
    AblationSlicing,
    /// Ablation: time-domain vs voltage-domain accumulation.
    AblationTda,
    /// Ablation: all-SRAM vs all-ReRAM vs hybrid tiles.
    AblationHybrid,
    /// Ablation: pipeline speedup vs sequence length.
    AblationPipelineDepth,
    /// Ablation: PVT corner sweep with digital calibration.
    AblationCorners,
}

impl StudyId {
    /// Every study, in figure order.
    pub const ALL: [StudyId; 18] = [
        StudyId::Fig1c,
        StudyId::Fig6a,
        StudyId::Fig6bc,
        StudyId::Fig6d,
        StudyId::Fig6e,
        StudyId::Fig6f,
        StudyId::Fig7,
        StudyId::Fig9a,
        StudyId::Fig9b,
        StudyId::Table1,
        StudyId::Table2,
        StudyId::Models,
        StudyId::Breakdown,
        StudyId::AblationSlicing,
        StudyId::AblationTda,
        StudyId::AblationHybrid,
        StudyId::AblationPipelineDepth,
        StudyId::AblationCorners,
    ];

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            StudyId::Fig1c => "fig1c",
            StudyId::Fig6a => "fig6a",
            StudyId::Fig6bc => "fig6bc",
            StudyId::Fig6d => "fig6d",
            StudyId::Fig6e => "fig6e",
            StudyId::Fig6f => "fig6f",
            StudyId::Fig7 => "fig7",
            StudyId::Fig9a => "fig9a",
            StudyId::Fig9b => "fig9b",
            StudyId::Table1 => "table1",
            StudyId::Table2 => "table2",
            StudyId::Models => "models",
            StudyId::Breakdown => "breakdown",
            StudyId::AblationSlicing => "ablation-slicing",
            StudyId::AblationTda => "ablation-tda",
            StudyId::AblationHybrid => "ablation-hybrid",
            StudyId::AblationPipelineDepth => "ablation-pipeline-depth",
            StudyId::AblationCorners => "ablation-corners",
        }
    }

    /// Parses a CLI/report name back.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// What one cell computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Evaluate a GEMM workload on an accelerator: the Fig 8 cell shape.
    Gemm {
        /// Accelerator under test.
        accelerator: AcceleratorKind,
        /// Design-point overrides (YOCO only).
        design: DesignPoint,
        /// Workload to run.
        workload: WorkloadSpec,
    },
    /// Simulate the token-level attention pipeline: the Fig 10 cell shape.
    Attention {
        /// Transformer name for reports.
        model: String,
        /// Attention dimensions.
        dims: AttentionDims,
        /// Design-point overrides.
        design: DesignPoint,
    },
    /// A named single-shot study.
    Study {
        /// Which study.
        study: StudyId,
    },
}

/// One unit of work for the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display identifier (not part of the cache key).
    pub id: String,
    /// The computation.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// A GEMM comparison cell.
    pub fn gemm(accelerator: AcceleratorKind, design: DesignPoint, workload: WorkloadSpec) -> Self {
        let id = format!("{}/{}", accelerator.name(), workload.label());
        Self {
            id,
            kind: ScenarioKind::Gemm {
                accelerator,
                design,
                workload,
            },
        }
    }

    /// An attention-pipeline cell.
    pub fn attention(model: impl Into<String>, dims: AttentionDims, design: DesignPoint) -> Self {
        let model = model.into();
        Self {
            id: format!("attention/{model}"),
            kind: ScenarioKind::Attention {
                model,
                dims,
                design,
            },
        }
    }

    /// A study cell.
    pub fn study(study: StudyId) -> Self {
        Self {
            id: format!("study/{}", study.name()),
            kind: ScenarioKind::Study { study },
        }
    }

    /// The content-addressed cache key: a stable hash of the canonical
    /// compact JSON of the *normalized* [`Scenario::kind`] (the `id` is
    /// display-only, and design overrides restating paper defaults do not
    /// change the key).
    pub fn cache_key(&self) -> String {
        self.kind.normalized().cache_key()
    }

    /// Checks every precondition the evaluator would enforce, without
    /// evaluating anything. [`crate::api::ScenarioBuilder`] calls this at
    /// `build()`; frontends can call it to reject a bad scenario before
    /// it occupies a worker (the evaluator re-checks the cheap guards
    /// either way, so nothing relies on callers remembering to).
    pub fn validate(&self) -> Result<(), SweepError> {
        self.kind
            .validate()
            .map_err(|e| e.for_scenario(self.id.clone()))
    }
}

impl SweepError {
    /// Attaches a concrete scenario id to errors raised below the
    /// scenario level (design-point and dimension checks).
    fn for_scenario(self, id: String) -> Self {
        match self {
            SweepError::InvalidScenario { scenario, reason } if scenario == "design-point" => {
                SweepError::InvalidScenario {
                    scenario: id,
                    reason: format!("design-point: {reason}"),
                }
            }
            other => other,
        }
    }
}

impl ScenarioKind {
    /// The content key of this kind. Callers holding a raw kind should go
    /// through [`Scenario::cache_key`]; this entry point expects `self`
    /// to already be normalized (it does not re-normalize).
    pub fn cache_key(&self) -> String {
        let canonical = serde_json::to_string(self).expect("scenario serialization is infallible");
        hash::content_key(&canonical)
    }

    /// Checks evaluator preconditions for this kind: the design point
    /// must resolve, baseline accelerators must run at the paper design
    /// point, workloads must resolve, and attention dimensions must be
    /// positive with an integral head width.
    pub fn validate(&self) -> Result<(), SweepError> {
        match self {
            ScenarioKind::Gemm {
                accelerator,
                design,
                workload,
            } => {
                workload.resolve()?;
                design.resolve()?;
                baseline_design_guard(*accelerator, design, workload.label())
            }
            ScenarioKind::Attention {
                model,
                dims,
                design,
            } => {
                design.resolve()?;
                attention_dims_guard(model, dims)
            }
            ScenarioKind::Study { .. } => Ok(()),
        }
    }

    /// Canonical form: embedded design points are normalized.
    pub fn normalized(&self) -> Self {
        match self {
            ScenarioKind::Gemm {
                accelerator,
                design,
                workload,
            } => ScenarioKind::Gemm {
                accelerator: *accelerator,
                design: design.normalized(),
                workload: workload.clone(),
            },
            ScenarioKind::Attention {
                model,
                dims,
                design,
            } => ScenarioKind::Attention {
                model: model.clone(),
                dims: *dims,
                design: design.normalized(),
            },
            ScenarioKind::Study { study } => ScenarioKind::Study { study: *study },
        }
    }
}

/// Baselines must run at the paper design point: silently ignoring an
/// override would poison the cache key space. Shared by
/// [`ScenarioKind::validate`] and the evaluator (which must hold the
/// invariant even for scenarios that skipped validation).
pub(crate) fn baseline_design_guard(
    accelerator: AcceleratorKind,
    design: &DesignPoint,
    workload_label: &str,
) -> Result<(), SweepError> {
    if accelerator != AcceleratorKind::Yoco && !design.is_paper() {
        return Err(SweepError::invalid(
            format!("{}/{workload_label}", accelerator.name()),
            format!(
                "design-point overrides only apply to yoco, not {}",
                accelerator.name()
            ),
        ));
    }
    Ok(())
}

/// Attention dimensions must be positive with an integral head width.
/// Shared by [`ScenarioKind::validate`] and the evaluator.
pub(crate) fn attention_dims_guard(model: &str, dims: &AttentionDims) -> Result<(), SweepError> {
    if dims.seq == 0 || dims.d_model == 0 || dims.heads == 0 {
        return Err(SweepError::invalid(
            format!("attention/{model}"),
            format!(
                "attention dimensions must be positive, got seq {} d_model {} heads {}",
                dims.seq, dims.d_model, dims.heads
            ),
        ));
    }
    if !dims.d_model.is_multiple_of(dims.heads) {
        return Err(SweepError::invalid(
            format!("attention/{model}"),
            format!(
                "heads ({}) must divide d_model ({})",
                dims.heads, dims.d_model
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_ignores_display_id_but_not_content() {
        let mut a = Scenario::gemm(
            AcceleratorKind::Yoco,
            DesignPoint::paper(),
            WorkloadSpec::Zoo {
                model: "resnet18".into(),
            },
        );
        let key = a.cache_key();
        a.id = "renamed".into();
        assert_eq!(key, a.cache_key(), "id must not affect the key");

        let b = Scenario::gemm(
            AcceleratorKind::Isaac,
            DesignPoint::paper(),
            WorkloadSpec::Zoo {
                model: "resnet18".into(),
            },
        );
        assert_ne!(key, b.cache_key(), "accelerator must affect the key");

        let c = Scenario::gemm(
            AcceleratorKind::Yoco,
            DesignPoint {
                tiles: Some(8),
                ..DesignPoint::paper()
            },
            WorkloadSpec::Zoo {
                model: "resnet18".into(),
            },
        );
        assert_ne!(key, c.cache_key(), "design point must affect the key");
    }

    #[test]
    fn design_point_resolves_against_paper_defaults() {
        let paper = DesignPoint::paper().resolve().unwrap();
        assert_eq!(paper, YocoConfig::paper_default());

        let scaled = DesignPoint {
            tiles: Some(8),
            activity: Some(0.25),
            ..Default::default()
        }
        .resolve()
        .unwrap();
        assert_eq!(scaled.tiles, 8);
        assert!((scaled.activity - 0.25).abs() < 1e-12);
        assert_eq!(scaled.ima_stack, paper.ima_stack);

        assert!(DesignPoint {
            tiles: Some(0),
            ..Default::default()
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn workload_specs_resolve() {
        let zoo = WorkloadSpec::Zoo {
            model: "resnet18".into(),
        }
        .resolve()
        .unwrap();
        assert!(!zoo.is_empty());
        let single = WorkloadSpec::Gemm {
            name: "fc".into(),
            m: 4,
            k: 128,
            n: 32,
            kind: LayerKind::Linear,
        }
        .resolve()
        .unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].k, 128);
        assert!(WorkloadSpec::Zoo {
            model: "no-such-model".into()
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn restated_paper_defaults_share_the_cache_key() {
        let empty = Scenario::gemm(
            AcceleratorKind::Yoco,
            DesignPoint::paper(),
            WorkloadSpec::Zoo {
                model: "resnet18".into(),
            },
        );
        // tiles: 4 IS the paper default — spelling it out must not fork
        // the cache key space, and must still count as the paper design.
        let explicit = Scenario::gemm(
            AcceleratorKind::Yoco,
            DesignPoint {
                tiles: Some(4),
                ..Default::default()
            },
            WorkloadSpec::Zoo {
                model: "resnet18".into(),
            },
        );
        assert_eq!(empty.cache_key(), explicit.cache_key());
        assert!(DesignPoint {
            tiles: Some(4),
            ..Default::default()
        }
        .is_paper());
        assert!(!DesignPoint {
            tiles: Some(8),
            ..Default::default()
        }
        .is_paper());
    }

    #[test]
    fn missing_non_option_fields_are_hard_errors() {
        // `m` is u64, not Option: omitting it must error, not default.
        let text = r#"{"id": "x", "kind": {"Gemm": {
            "accelerator": "Yoco",
            "design": {},
            "workload": {"Gemm": {"name": "g", "k": 2, "n": 3, "kind": "Linear"}}}}}"#;
        let err = serde_json::from_str::<Scenario>(text).unwrap_err();
        assert!(err.to_string().contains("missing field `m`"), "{err}");
    }

    #[test]
    fn omitted_design_knobs_default_to_paper_values() {
        // Hand-written grid files may spell only the knobs they override.
        let text = r#"{"id": "x", "kind": {"Gemm": {
            "accelerator": "Yoco",
            "design": {"tiles": 2},
            "workload": {"Zoo": {"model": "resnet18"}}}}}"#;
        let s: Scenario = serde_json::from_str(text).unwrap();
        match &s.kind {
            ScenarioKind::Gemm { design, .. } => {
                assert_eq!(design.tiles, Some(2));
                assert_eq!(design.ima_stack, None);
                assert_eq!(design.activity, None);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let scenarios = vec![
            Scenario::gemm(
                AcceleratorKind::Timely,
                DesignPoint {
                    ima_stack: Some(4),
                    ..Default::default()
                },
                WorkloadSpec::Gemm {
                    name: "g".into(),
                    m: 1,
                    k: 2,
                    n: 3,
                    kind: LayerKind::Linear,
                },
            ),
            Scenario::attention(
                "bert",
                AttentionDims {
                    seq: 128,
                    d_model: 768,
                    heads: 12,
                },
                DesignPoint::paper(),
            ),
            Scenario::study(StudyId::Fig7),
        ];
        let text = serde_json::to_string_pretty(&scenarios).unwrap();
        let back: Vec<Scenario> = serde_json::from_str(&text).unwrap();
        assert_eq!(scenarios, back);
    }
}
