//! The fan-out core and the protocol-speaking [`Coordinator`].
//!
//! [`fan_out`] is a pure orchestration function over a [`WorkerPool`]:
//! partition → dispatch → merge → requeue, no sockets, no protocol —
//! which is what makes the requeue semantics unit-testable. The
//! [`Coordinator`] wraps it with the same admission gate, tally, and
//! NDJSON dispatch shape as the single-box
//! [`Runtime`](crate::serve::Runtime), so both plug into the shared
//! epoll reactor ([`serve_reactor`](crate::serve::serve_reactor))
//! unchanged.

use crate::api::{
    CellOutcome, CellStatus, EvalRequest, EvalResponse, Response, Shard, StatusReport, SweepError,
    API_V1,
};
use crate::cluster::pool::{select_workers, ShardOutcome, TcpPool, WorkerPool};
use crate::engine::{CellResult, SweepReport};
use crate::scenario::Scenario;
use crate::serve::{
    reject_buffered, reject_streaming, FrameSink, Gate, LatchSink, LineHandler, Served, Tally,
    DEFAULT_QUEUE_DEPTH, RETRY_QUANTUM_MS,
};
use crate::telemetry::{self, trace};
use std::io;
use std::sync::Mutex;
use std::time::Instant;

/// How a fan-out ended.
#[derive(Debug)]
pub enum FanoutResult {
    /// The batch ran (possibly with synthesized `Failed` cells if no
    /// live worker could complete some scenarios).
    Ran(FanoutOutcome),
    /// Every live worker refused admission before any cell was
    /// produced; the whole request should be answered `Busy`.
    AllBusy {
        /// The largest backoff hint any worker suggested.
        retry_after_ms: u64,
    },
}

/// The merged result of one fan-out.
#[derive(Debug)]
pub struct FanoutOutcome {
    /// One outcome per input scenario, in scenario order.
    pub cells: Vec<CellOutcome>,
    /// Cells the workers served from their caches.
    pub hits: usize,
    /// Cells computed (or failed) fresh.
    pub misses: usize,
    /// Dispatch rounds taken (1 = no requeue was needed).
    pub rounds: usize,
    /// Workers lost along the way (connection drop, refused admission,
    /// or an incomplete `Done`), in loss order.
    pub dead: Vec<String>,
}

/// Matches an arriving cell frame to this shard's first unclaimed
/// scenario with the same display id *and* content key, claiming it.
/// Matching on the key as well keeps attribution correct when a
/// hand-written batch reuses one display id for different scenario
/// contents (the key is the content hash both sides compute from the
/// same code, so it cannot disagree within one deployment). Frames the
/// shard does not own (a misbehaving worker) claim nothing and are
/// dropped by the caller.
fn claim(
    pending: &mut Vec<usize>,
    scenarios: &[Scenario],
    keys: &[String],
    cell: &CellOutcome,
) -> Option<usize> {
    let pos = pending
        .iter()
        .position(|&i| scenarios[i].id == cell.id && keys[i] == cell.key)?;
    Some(pending.remove(pos))
}

/// Shared merge state: per-scenario outcomes plus the current round's
/// per-shard unclaimed indices. One mutex makes claims atomic (each
/// scenario is claimed — and therefore emitted — exactly once); emits
/// themselves happen outside this lock.
struct FanState {
    outcomes: Vec<Option<CellOutcome>>,
    pending: Vec<Vec<usize>>,
}

/// Fans `scenarios` out over `workers` (already probed and ordered by
/// [`select_workers`]) and merges the streamed cells back, calling
/// `emit(cell, raw_line)` exactly once per scenario as its outcome
/// arrives (worker frames are forwarded with their original bytes).
/// `emit` runs on the dispatch threads *outside* the merge lock and may
/// be called concurrently — callers serialize their own sink.
///
/// Partitioning reuses the `--shard i/n` round-robin rule
/// ([`Shard::select_indices`]). A worker lost mid-shard — connection
/// error, `Busy` refusal, or a `Done` that left cells unaccounted —
/// is excluded, and its *unfinished* cells are re-partitioned over the
/// surviving workers in the next round; cells it already delivered are
/// never recomputed or re-emitted. When scenarios remain after the last
/// worker is gone, they are synthesized as `Failed` cells (and emitted)
/// so the batch always completes positionally.
pub fn fan_out(
    pool: &dyn WorkerPool,
    workers: &[String],
    id: &str,
    scenarios: &[Scenario],
    force: bool,
    emit: &(dyn Fn(&CellOutcome, &str) + Sync),
) -> FanoutResult {
    let state = Mutex::new(FanState {
        outcomes: vec![None; scenarios.len()],
        pending: Vec::new(),
    });
    let keys: Vec<String> = scenarios.iter().map(Scenario::cache_key).collect();
    let mut live: Vec<String> = workers.to_vec();
    let mut dead: Vec<String> = Vec::new();
    let mut rounds = 0usize;
    // Tracks whether *every* dispatch across every round was refused
    // with Busy — only then is the whole request retryable overload
    // rather than a failure.
    let mut all_busy = true;
    let mut busy_hint = 0u64;
    loop {
        let remaining: Vec<usize> = {
            let st = state.lock().expect("fan-out state");
            (0..scenarios.len())
                .filter(|&i| st.outcomes[i].is_none())
                .collect()
        };
        if remaining.is_empty() || live.is_empty() {
            break;
        }
        // Rounds past the first re-dispatch cells a lost worker left
        // unfinished — the requeue volume the metrics surface.
        if rounds > 0 {
            telemetry::global().note_requeued_cells(remaining.len() as u64);
        }
        let shards = live.len().min(remaining.len());
        let parts: Vec<Vec<usize>> = (1..=shards)
            .map(|k| {
                Shard {
                    index: k,
                    count: shards,
                }
                .select_indices(remaining.len())
                .into_iter()
                .map(|p| remaining[p])
                .collect()
            })
            .collect();
        state.lock().expect("fan-out state").pending = parts.clone();
        let results: Vec<io::Result<ShardOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(k, part)| {
                    let addr = live[k].clone();
                    let sub_scenarios: Vec<Scenario> =
                        part.iter().map(|&i| scenarios[i].clone()).collect();
                    let mut sub =
                        EvalRequest::streaming(format!("{id}#r{rounds}w{k}"), sub_scenarios);
                    sub.force = force;
                    let state = &state;
                    let keys = &keys;
                    scope.spawn(move || {
                        let dispatch_started = Instant::now();
                        let result = pool.dispatch(&addr, sub, &mut |cell, raw| {
                            // Claim under the merge lock, emit outside
                            // it: a slow consumer must not block other
                            // workers' arrivals on the merge state
                            // (emit callees do their own serialization).
                            let claimed = {
                                let mut st = state.lock().expect("fan-out state");
                                match claim(&mut st.pending[k], scenarios, keys, &cell) {
                                    Some(idx) => {
                                        st.outcomes[idx] = Some(cell.clone());
                                        true
                                    }
                                    None => false,
                                }
                            };
                            if claimed {
                                emit(&cell, raw);
                            }
                        });
                        telemetry::global().observe_dispatch(&addr, dispatch_started.elapsed());
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dispatch thread"))
                .collect()
        });
        rounds += 1;

        let mut lost = vec![false; shards];
        for (k, result) in results.iter().enumerate() {
            match result {
                Ok(ShardOutcome::Done { .. }) => {
                    all_busy = false;
                    // A Done that left cells unclaimed means the worker
                    // skipped work; trust it no further (this also
                    // guarantees the round loop terminates: a round with
                    // no progress always shrinks `live`).
                    if !state.lock().expect("fan-out state").pending[k].is_empty() {
                        lost[k] = true;
                    }
                }
                Ok(ShardOutcome::Busy { retry_after_ms }) => {
                    lost[k] = true;
                    busy_hint = busy_hint.max(*retry_after_ms);
                }
                Err(_) => {
                    all_busy = false;
                    lost[k] = true;
                }
            }
        }
        for k in (0..shards).rev() {
            if lost[k] {
                dead.push(live.remove(k));
            }
        }
    }

    let st = state.into_inner().expect("fan-out state");
    // Retryable overload: dispatches happened, every single one was a
    // Busy refusal, and no cell ever arrived. (A batch smaller than the
    // worker set reaches untried workers in later rounds, so this is
    // checked after the loop, not per round.)
    if rounds > 0 && all_busy && st.outcomes.iter().all(Option::is_none) {
        return FanoutResult::AllBusy {
            retry_after_ms: busy_hint.max(1),
        };
    }
    let cells: Vec<CellOutcome> = st
        .outcomes
        .into_iter()
        .zip(scenarios)
        .map(|(outcome, scenario)| {
            outcome.unwrap_or_else(|| {
                let cell = CellOutcome {
                    id: scenario.id.clone(),
                    key: scenario.cache_key(),
                    status: CellStatus::Failed,
                    metrics: None,
                    error: Some(SweepError::evaluation(
                        scenario.id.clone(),
                        "cluster: no live worker completed this cell",
                    )),
                };
                let raw = serde_json::to_string(&Response::Cell(cell.clone()))
                    .expect("frame serialization is infallible");
                emit(&cell, &raw);
                cell
            })
        })
        .collect();
    let hits = cells.iter().filter(|c| c.status == CellStatus::Hit).count();
    let misses = cells.len() - hits;
    FanoutResult::Ran(FanoutOutcome {
        cells,
        hits,
        misses,
        rounds,
        dead,
    })
}

/// Assembles a [`SweepReport`] from merged cluster outcomes, the same
/// shape a local [`Engine`](crate::engine::Engine) run produces — so
/// `SweepReport::canonical_json` byte-diffs clean between a cluster run
/// and a single-box run of the same grid.
pub fn report_from_outcomes(
    scenarios: &[Scenario],
    cells: &[CellOutcome],
    elapsed_ms: u64,
) -> SweepReport {
    assert_eq!(
        scenarios.len(),
        cells.len(),
        "one outcome per scenario, in scenario order"
    );
    let cells: Vec<CellResult> = scenarios
        .iter()
        .zip(cells.iter())
        .map(|(scenario, outcome)| CellResult {
            scenario: scenario.clone(),
            key: outcome.key.clone(),
            cached: outcome.status == CellStatus::Hit,
            error: outcome.error.clone(),
            metrics: outcome.metrics.clone(),
        })
        .collect();
    let hits = cells.iter().filter(|c| c.cached).count();
    let misses = cells.len() - hits;
    SweepReport {
        cells,
        hits,
        misses,
        elapsed_ms,
    }
}

/// Sizing and topology of a coordinator.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker host addresses (`HOST:PORT`), each a stock `yoco-serve`.
    pub workers: Vec<String>,
    /// Maximum client evaluation requests in flight at once (the
    /// coordinator's own admission bound; workers keep their own).
    pub queue_depth: usize,
}

impl ClusterConfig {
    /// A config over `workers` with the default queue depth.
    pub fn new(workers: Vec<String>) -> Self {
        Self {
            workers,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }
}

/// The cluster front: speaks the ordinary v1/v2 NDJSON protocol to
/// clients and fans admitted requests out over the worker hosts.
/// Plugs into [`crate::serve::serve_reactor`] exactly like the
/// single-box runtime.
pub struct Coordinator {
    pool: Box<dyn WorkerPool + Send + Sync>,
    workers: Vec<String>,
    gate: Gate,
    tally: Tally,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.workers)
            .field("queue_depth", &self.gate.depth())
            .finish()
    }
}

impl Coordinator {
    /// A coordinator dispatching over TCP ([`TcpPool`]).
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_pool(Box::new(TcpPool::default()), config)
    }

    /// A coordinator over an explicit pool (tests inject fakes here).
    pub fn with_pool(pool: Box<dyn WorkerPool + Send + Sync>, config: ClusterConfig) -> Self {
        Self {
            pool,
            workers: config.workers,
            gate: Gate::new(config.queue_depth),
            tally: Tally::default(),
        }
    }

    /// The coordinator's admission gate (exposed for observability).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The configured worker addresses.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// The coordinator's [`StatusReport`]: its own gate and counters
    /// (`role: "coordinator"`), not an aggregate over workers — probe
    /// each worker for theirs.
    pub fn status(&self) -> StatusReport {
        let telem = telemetry::global();
        let mut report = StatusReport {
            role: "coordinator".into(),
            workers: self.workers.len(),
            occupancy: self.gate.occupancy(),
            queue_depth: self.gate.depth(),
            service_estimate_ms: self.gate.service_estimate_ms().round() as u64,
            busy_ms: self.gate.slot_held_ms(),
            fd_sheds: telem.fd_sheds(),
            slow_reader_disconnects: telem.slow_reader_disconnects(),
            ..StatusReport::default()
        };
        self.tally.fill(&mut report);
        report
    }

    /// Handles one client line end to end — the coordinator-side mirror
    /// of [`crate::serve::Runtime::handle_line`], on the same shared
    /// dispatch.
    pub fn handle_line(&self, line: &str, sink: &mut dyn FrameSink) -> io::Result<Served> {
        self.handle_line_at(line, Instant::now(), sink)
    }

    /// [`Coordinator::handle_line`] with an explicit receipt instant
    /// (see [`crate::serve::Runtime::handle_line_at`]): deadline
    /// checks measure queueing from when the transport parsed the
    /// line, which under the reactor includes worker-pool wait.
    pub fn handle_line_at(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        crate::serve::dispatch_line(
            line,
            sink,
            "this coordinator",
            || self.status(),
            |req, sink| self.eval_buffered(req, received, sink),
            |req, sink| self.eval_streaming(req, received, sink),
        )
    }

    /// Probes and selects workers for one admitted request.
    fn selection(&self) -> Vec<String> {
        select_workers(&*self.pool, &self.workers)
    }

    /// Protocol v1 through the cluster: admission, silent fan-out, one
    /// buffered [`EvalResponse`] — byte-identical to a single box's
    /// response for the same batch (cells in request order, identical
    /// statuses and payloads).
    fn eval_buffered(
        &self,
        req: EvalRequest,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        let mut ticket = match self.gate.admit(received, req.deadline_ms) {
            Ok(ticket) => ticket,
            Err(busy) => {
                return reject_buffered(sink, &self.tally, req.id, busy.retry_after_ms);
            }
        };
        let (span, fan_id) = observe_fanout_admission(&req, received);
        let selected = self.selection();
        if selected.is_empty() {
            // No worker answered its probe — most likely transient
            // (restart, network blip), so answer retryable Busy with
            // the cold-start quantum rather than a hard failure. A
            // rejection's duration (probe timeouts) is not service
            // time; keep it out of the retry-hint EWMA.
            ticket.skip_service_record();
            return reject_buffered(sink, &self.tally, req.id, RETRY_QUANTUM_MS);
        }
        let fan_started = Instant::now();
        let result = fan_out(
            &*self.pool,
            &selected,
            &fan_id,
            &req.scenarios,
            req.force,
            &|_, _| {},
        );
        observe_fanout_eval(&req, span.as_deref(), fan_started);
        match result {
            FanoutResult::AllBusy { retry_after_ms } => {
                ticket.skip_service_record();
                reject_buffered(sink, &self.tally, req.id, retry_after_ms)
            }
            FanoutResult::Ran(out) => {
                let response = EvalResponse {
                    version: API_V1,
                    id: req.id.clone(),
                    cells: out.cells,
                    hits: out.hits,
                    misses: out.misses,
                    error: None,
                };
                let cells = response.cells.len();
                // Free the slot before the response line: a client
                // reacting to it instantly must see its slot back.
                drop(ticket);
                let flush_started = Instant::now();
                sink.send(&Response::Eval(response))?;
                self.tally.note_eval(cells, out.hits, out.misses);
                observe_fanout_flush(&req, span.as_deref(), flush_started, cells);
                Ok(Served::Eval {
                    id: req.id,
                    cells,
                    hits: out.hits,
                    misses: out.misses,
                    streamed: false,
                })
            }
        }
    }

    /// Protocol v2 through the cluster: `Accepted` at admission, worker
    /// `Cell` frames forwarded verbatim (original bytes) as they
    /// arrive from any worker, then one merged `Done`. If every worker
    /// refuses admission before any cell flows, the stream closes with
    /// a `Busy` frame instead of `Done`.
    fn eval_streaming(
        &self,
        req: EvalRequest,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        let mut ticket = match self.gate.admit(received, req.deadline_ms) {
            Ok(ticket) => ticket,
            Err(busy) => {
                return reject_streaming(sink, &self.tally, req.id, busy.retry_after_ms);
            }
        };
        let (span, fan_id) = observe_fanout_admission(&req, received);
        let selected = self.selection();
        if selected.is_empty() {
            // No worker answered its probe — most likely transient, so
            // answer retryable Busy; a rejection's duration is not
            // service time (see eval_buffered).
            ticket.skip_service_record();
            return reject_streaming(sink, &self.tally, req.id, RETRY_QUANTUM_MS);
        }
        sink.send(&Response::Accepted {
            id: req.id.clone(),
            position: ticket.position(),
        })?;
        // Worker frames arrive concurrently on dispatch threads; the
        // latch serializes the forwards and, past the first transport
        // error, stops writing but lets the fan-out finish — the
        // workers' caches still fill, so the client's retry is warm.
        let fan_started = Instant::now();
        let latch = LatchSink::new(sink);
        let result = fan_out(
            &*self.pool,
            &selected,
            &fan_id,
            &req.scenarios,
            req.force,
            &|_, raw| latch.send_raw(raw),
        );
        let (sink, error) = latch.finish();
        if let Some(e) = error {
            return Err(e);
        }
        observe_fanout_eval(&req, span.as_deref(), fan_started);
        match result {
            FanoutResult::AllBusy { retry_after_ms } => {
                ticket.skip_service_record();
                reject_streaming(sink, &self.tally, req.id, retry_after_ms)
            }
            FanoutResult::Ran(out) => {
                drop(ticket);
                let flush_started = Instant::now();
                sink.send(&Response::Done {
                    id: req.id.clone(),
                    hits: out.hits,
                    misses: out.misses,
                })?;
                self.tally.note_eval(out.cells.len(), out.hits, out.misses);
                observe_fanout_flush(&req, span.as_deref(), flush_started, out.cells.len());
                Ok(Served::Eval {
                    id: req.id,
                    cells: out.cells.len(),
                    hits: out.hits,
                    misses: out.misses,
                    streamed: true,
                })
            }
        }
    }
}

/// The coordinator's post-admission bookkeeping: the queue-wait sample
/// plus, when tracing is on, the request's span with its `queued`
/// record — and the fan-out id workers see. Embedding the span after a
/// `#t` marker inside the sub-request id is what stitches a fan-out
/// trace across hosts: each worker adopts the embedded span for its own
/// stage records instead of minting a fresh one.
fn observe_fanout_admission(req: &EvalRequest, received: Instant) -> (Option<String>, String) {
    let queued = received.elapsed();
    telemetry::global().observe_queue_wait(queued);
    let Some(span) = trace::span_for_request(&req.id) else {
        return (None, req.id.clone());
    };
    trace::record(
        &span,
        &req.id,
        &crate::serve::trace_grid(&req.scenarios),
        "queued",
        queued,
        req.scenarios.len(),
    );
    let fan_id = format!("{}#t{}", req.id, span);
    (Some(span), fan_id)
}

/// The coordinator's `eval` stage is the fan-out itself: dispatch,
/// merge, and any requeue rounds.
fn observe_fanout_eval(req: &EvalRequest, span: Option<&str>, started: Instant) {
    let fanned = started.elapsed();
    telemetry::global().observe_eval(fanned);
    if let Some(span) = span {
        trace::record(
            span,
            &req.id,
            &crate::serve::trace_grid(&req.scenarios),
            "eval",
            fanned,
            req.scenarios.len(),
        );
    }
}

/// The coordinator's `flush` stage: merged result → terminal frame
/// buffered toward the client.
fn observe_fanout_flush(req: &EvalRequest, span: Option<&str>, started: Instant, cells: usize) {
    let flushed = started.elapsed();
    telemetry::global().observe_flush(flushed);
    if let Some(span) = span {
        trace::record(
            span,
            &req.id,
            &crate::serve::trace_grid(&req.scenarios),
            "flush",
            flushed,
            cells,
        );
    }
}

impl LineHandler for Coordinator {
    fn handle_line_at(
        &self,
        line: &str,
        received: Instant,
        sink: &mut dyn FrameSink,
    ) -> io::Result<Served> {
        Coordinator::handle_line_at(self, line, received, sink)
    }
}

/// The whole coordinator bring-up shared by `yoco-serve --coordinator`
/// and `sweep cluster serve`: bind, print the ready line
/// (`<announce> listening on <local>`) and topology, then serve until
/// `Shutdown` drains it — through the event-driven reactor
/// ([`crate::serve::serve_reactor`]). Returns the bind error, if any.
pub fn serve_coordinator(
    addr: &str,
    config: ClusterConfig,
    announce: &str,
    quiet: bool,
) -> io::Result<()> {
    let (listener, local) = crate::serve::listen(addr)?;
    println!("{announce} listening on {local}");
    if !quiet {
        println!(
            "coordinator over {} workers: {}",
            config.workers.len(),
            config.workers.join(", ")
        );
        println!("queue depth {}", config.queue_depth);
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let reactor_config = crate::serve::ReactorConfig::for_queue_depth(config.queue_depth);
    let handler: std::sync::Arc<dyn LineHandler> = std::sync::Arc::new(Coordinator::new(config));
    crate::serve::serve_reactor(listener, handler, quiet, reactor_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Request;
    use crate::scenario::StudyId;
    use std::collections::HashMap;
    use std::sync::Mutex as StdMutex;

    /// How a fake worker behaves for the whole test.
    #[derive(Debug, Clone, Copy)]
    enum Behavior {
        /// Probes with the given occupancy; completes every dispatched
        /// cell (status `Computed`).
        Healthy { occupancy: usize },
        /// Probes fine, then streams this many cells and drops the
        /// connection.
        DiesAfter(usize),
        /// Probes fine, refuses every dispatch with `Busy`.
        AlwaysBusy { hint: u64 },
        /// Fails the probe (connection refused).
        Unreachable,
    }

    /// An in-process worker pool with scripted per-host behavior and a
    /// dispatch log (who was asked, in order).
    struct FakePool {
        behaviors: HashMap<String, Behavior>,
        dispatched: StdMutex<Vec<String>>,
    }

    impl FakePool {
        fn new(hosts: &[(&str, Behavior)]) -> Self {
            Self {
                behaviors: hosts.iter().map(|(h, b)| ((*h).to_owned(), *b)).collect(),
                dispatched: StdMutex::new(Vec::new()),
            }
        }

        fn dispatch_log(&self) -> Vec<String> {
            self.dispatched.lock().unwrap().clone()
        }

        fn outcome(scenario: &Scenario) -> CellOutcome {
            CellOutcome {
                id: scenario.id.clone(),
                key: scenario.cache_key(),
                status: CellStatus::Computed,
                metrics: None,
                error: None,
            }
        }
    }

    impl WorkerPool for FakePool {
        fn status(&self, addr: &str) -> io::Result<StatusReport> {
            let behavior = self.behaviors.get(addr).copied();
            let occupancy = match behavior {
                Some(Behavior::Healthy { occupancy }) => occupancy,
                Some(Behavior::Unreachable) | None => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "unreachable",
                    ));
                }
                _ => 0,
            };
            Ok(StatusReport {
                role: "serve".into(),
                occupancy,
                queue_depth: 4,
                jobs: 2,
                ..StatusReport::default()
            })
        }

        fn dispatch(
            &self,
            addr: &str,
            request: EvalRequest,
            on_cell: &mut dyn FnMut(CellOutcome, &str),
        ) -> io::Result<ShardOutcome> {
            self.dispatched.lock().unwrap().push(addr.to_owned());
            match self.behaviors.get(addr).copied() {
                Some(Behavior::Healthy { .. }) => {
                    for s in &request.scenarios {
                        let cell = Self::outcome(s);
                        let raw = serde_json::to_string(&Response::Cell(cell.clone())).unwrap();
                        on_cell(cell, &raw);
                    }
                    Ok(ShardOutcome::Done {
                        hits: 0,
                        misses: request.scenarios.len(),
                    })
                }
                Some(Behavior::DiesAfter(n)) => {
                    for s in request.scenarios.iter().take(n) {
                        let cell = Self::outcome(s);
                        let raw = serde_json::to_string(&Response::Cell(cell.clone())).unwrap();
                        on_cell(cell, &raw);
                    }
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "worker died mid-stream",
                    ))
                }
                Some(Behavior::AlwaysBusy { hint }) => Ok(ShardOutcome::Busy {
                    retry_after_ms: hint,
                }),
                Some(Behavior::Unreachable) | None => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "unreachable",
                )),
            }
        }
    }

    fn grid(n: usize) -> Vec<Scenario> {
        // Cheap study scenarios with distinct ids, cycled from the
        // catalog; the fakes never evaluate them.
        (0..n)
            .map(|i| {
                let mut s = Scenario::study(StudyId::ALL[i % StudyId::ALL.len()]);
                s.id = format!("cell-{i}");
                s
            })
            .collect()
    }

    fn collect_emit() -> (StdMutex<Vec<CellOutcome>>, StdMutex<Vec<String>>) {
        (StdMutex::new(Vec::new()), StdMutex::new(Vec::new()))
    }

    #[test]
    fn selection_probes_orders_by_occupancy_and_drops_unreachable_hosts() {
        let pool = FakePool::new(&[
            ("w-loaded", Behavior::Healthy { occupancy: 3 }),
            ("w-idle", Behavior::Healthy { occupancy: 0 }),
            ("w-gone", Behavior::Unreachable),
            ("w-mid", Behavior::Healthy { occupancy: 1 }),
        ]);
        let configured: Vec<String> = ["w-loaded", "w-idle", "w-gone", "w-mid"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(
            select_workers(&pool, &configured),
            vec!["w-idle", "w-mid", "w-loaded"],
            "least-loaded first, dead host dropped"
        );
    }

    #[test]
    fn fan_out_completes_on_healthy_workers_in_one_round() {
        let pool = FakePool::new(&[
            ("a", Behavior::Healthy { occupancy: 0 }),
            ("b", Behavior::Healthy { occupancy: 0 }),
        ]);
        let scenarios = grid(5);
        let (cells_seen, raws_seen) = collect_emit();
        let result = fan_out(
            &pool,
            &["a".to_owned(), "b".to_owned()],
            "t-1",
            &scenarios,
            false,
            &|cell, raw| {
                cells_seen.lock().unwrap().push(cell.clone());
                raws_seen.lock().unwrap().push(raw.to_owned());
            },
        );
        let FanoutResult::Ran(out) = result else {
            panic!("expected Ran, got {result:?}");
        };
        assert_eq!(out.rounds, 1);
        assert!(out.dead.is_empty());
        assert_eq!((out.hits, out.misses), (0, 5));
        let ids: Vec<&str> = out.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            ["cell-0", "cell-1", "cell-2", "cell-3", "cell-4"],
            "merged outcomes are in scenario order"
        );
        assert_eq!(cells_seen.lock().unwrap().len(), 5, "one emit per cell");
        assert_eq!(raws_seen.lock().unwrap().len(), 5);
        // Round-robin split: a gets indices 0,2,4; b gets 1,3. Shards
        // dispatch on parallel threads, so log order within a round is
        // unspecified — compare sorted.
        let mut log = pool.dispatch_log();
        log.sort_unstable();
        assert_eq!(log, ["a", "b"]);
    }

    #[test]
    fn fan_out_requeues_a_dead_workers_unfinished_cells_excluding_it() {
        // `a` delivers one of its three cells, then drops; `b` is
        // healthy. The two cells `a` never finished must complete on
        // `b`, and `a` must not be dispatched to again.
        let pool = FakePool::new(&[
            ("a", Behavior::DiesAfter(1)),
            ("b", Behavior::Healthy { occupancy: 0 }),
        ]);
        let scenarios = grid(6);
        let (cells_seen, _raws) = collect_emit();
        let result = fan_out(
            &pool,
            &["a".to_owned(), "b".to_owned()],
            "t-2",
            &scenarios,
            false,
            &|cell, _| cells_seen.lock().unwrap().push(cell.clone()),
        );
        let FanoutResult::Ran(out) = result else {
            panic!("expected Ran, got {result:?}");
        };
        assert_eq!(out.rounds, 2, "one requeue round");
        assert_eq!(out.dead, vec!["a".to_owned()]);
        assert_eq!(out.cells.len(), 6);
        assert!(
            out.cells.iter().all(|c| c.status == CellStatus::Computed),
            "every cell completed despite the loss: {:?}",
            out.cells
        );
        // Exactly one emit per scenario — the cell `a` delivered before
        // dying is not re-emitted by the requeue.
        let mut seen: Vec<String> = cells_seen
            .lock()
            .unwrap()
            .iter()
            .map(|c| c.id.clone())
            .collect();
        seen.sort();
        let mut expected: Vec<String> = scenarios.iter().map(|s| s.id.clone()).collect();
        expected.sort();
        assert_eq!(seen, expected);
        // Dispatch log: round 1 fans to a and b (parallel threads, so
        // order within the round is unspecified); round 2 only to b.
        let log = pool.dispatch_log();
        let mut round1 = log[..2].to_vec();
        round1.sort_unstable();
        assert_eq!(round1, ["a", "b"]);
        assert_eq!(log[2..], ["b".to_owned()]);
    }

    #[test]
    fn fan_out_treats_busy_workers_as_lost_for_the_request() {
        let pool = FakePool::new(&[
            ("busy", Behavior::AlwaysBusy { hint: 99 }),
            ("ok", Behavior::Healthy { occupancy: 0 }),
        ]);
        let scenarios = grid(4);
        let result = fan_out(
            &pool,
            &["busy".to_owned(), "ok".to_owned()],
            "t-3",
            &scenarios,
            false,
            &|_, _| {},
        );
        let FanoutResult::Ran(out) = result else {
            panic!("expected Ran, got {result:?}");
        };
        assert_eq!(out.dead, vec!["busy".to_owned()]);
        assert_eq!(out.cells.len(), 4);
        assert!(out.cells.iter().all(|c| c.status == CellStatus::Computed));
        // The busy host is excluded from the requeue round. Round-1
        // dispatches race on parallel threads — compare sorted.
        let log = pool.dispatch_log();
        let mut round1 = log[..2].to_vec();
        round1.sort_unstable();
        assert_eq!(round1, ["busy", "ok"]);
        assert_eq!(log[2..], ["ok".to_owned()]);
    }

    #[test]
    fn fan_out_reports_all_busy_when_every_worker_refuses_upfront() {
        let pool = FakePool::new(&[
            ("b1", Behavior::AlwaysBusy { hint: 40 }),
            ("b2", Behavior::AlwaysBusy { hint: 70 }),
        ]);
        let result = fan_out(
            &pool,
            &["b1".to_owned(), "b2".to_owned()],
            "t-4",
            &grid(3),
            false,
            &|_, _| {},
        );
        let FanoutResult::AllBusy { retry_after_ms } = result else {
            panic!("expected AllBusy, got {result:?}");
        };
        assert_eq!(retry_after_ms, 70, "the largest worker hint wins");
    }

    #[test]
    fn all_busy_is_detected_even_with_fewer_scenarios_than_workers() {
        // A 2-cell batch over 3 busy workers takes two rounds to try
        // everyone (round 1 dispatches 2 shards, round 2 the remaining
        // worker); the overall verdict must still be retryable Busy,
        // not per-cell failure.
        let pool = FakePool::new(&[
            ("b1", Behavior::AlwaysBusy { hint: 10 }),
            ("b2", Behavior::AlwaysBusy { hint: 20 }),
            ("b3", Behavior::AlwaysBusy { hint: 30 }),
        ]);
        let result = fan_out(
            &pool,
            &["b1".to_owned(), "b2".to_owned(), "b3".to_owned()],
            "t-6",
            &grid(2),
            false,
            &|_, _| {},
        );
        let FanoutResult::AllBusy { retry_after_ms } = result else {
            panic!("expected AllBusy, got {result:?}");
        };
        assert_eq!(retry_after_ms, 30);
        assert_eq!(pool.dispatch_log().len(), 3, "every worker was tried");
    }

    #[test]
    fn duplicate_display_ids_are_attributed_by_content_key() {
        // Two different scenarios sharing one display id: the arriving
        // cells must land on the scenario whose content key they carry,
        // not just the first unclaimed index with that id.
        let pool = FakePool::new(&[("w", Behavior::Healthy { occupancy: 0 })]);
        let mut a = Scenario::study(StudyId::Fig9a);
        let mut b = Scenario::study(StudyId::Table2);
        a.id = "dup".into();
        b.id = "dup".into();
        let scenarios = vec![a.clone(), b.clone()];
        let result = fan_out(
            &pool,
            &["w".to_owned()],
            "t-dup",
            &scenarios,
            false,
            &|_, _| {},
        );
        let FanoutResult::Ran(out) = result else {
            panic!("expected Ran, got {result:?}");
        };
        assert_eq!(out.cells.len(), 2);
        assert_eq!(out.cells[0].key, a.cache_key());
        assert_eq!(out.cells[1].key, b.cache_key());
        assert!(out.cells.iter().all(|c| c.status == CellStatus::Computed));
    }

    #[test]
    fn fan_out_synthesizes_failed_cells_when_every_worker_is_lost() {
        let pool = FakePool::new(&[
            ("d1", Behavior::DiesAfter(1)),
            ("d2", Behavior::DiesAfter(0)),
        ]);
        let scenarios = grid(5);
        let (cells_seen, _raws) = collect_emit();
        let result = fan_out(
            &pool,
            &["d1".to_owned(), "d2".to_owned()],
            "t-5",
            &scenarios,
            false,
            &|cell, _| cells_seen.lock().unwrap().push(cell.clone()),
        );
        let FanoutResult::Ran(out) = result else {
            panic!("expected Ran, got {result:?}");
        };
        assert_eq!(out.dead.len(), 2, "both workers lost");
        assert_eq!(out.cells.len(), 5, "batch still completes positionally");
        let failed = out
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Failed)
            .count();
        assert_eq!(failed, 4, "the one delivered cell survives");
        for cell in out.cells.iter().filter(|c| c.status == CellStatus::Failed) {
            assert_eq!(cell.error.as_ref().unwrap().category(), "evaluation");
        }
        assert_eq!(
            cells_seen.lock().unwrap().len(),
            5,
            "synthesized failures are emitted too"
        );
    }

    #[test]
    fn report_from_outcomes_matches_the_engine_report_shape() {
        let scenarios = grid(3);
        let outcomes: Vec<CellOutcome> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| CellOutcome {
                id: s.id.clone(),
                key: s.cache_key(),
                status: if i == 0 {
                    CellStatus::Hit
                } else {
                    CellStatus::Computed
                },
                metrics: None,
                error: None,
            })
            .collect();
        let report = report_from_outcomes(&scenarios, &outcomes, 7);
        assert_eq!((report.hits, report.misses), (1, 2));
        assert_eq!(report.cells.len(), 3);
        assert!(report.cells[0].cached);
        assert!(!report.cells[1].cached);
        assert_eq!(report.cells[1].scenario, scenarios[1]);
        assert_eq!(report.elapsed_ms, 7);
    }

    fn coordinator(pool: FakePool, workers: &[&str], depth: usize) -> Coordinator {
        Coordinator::with_pool(
            Box::new(pool),
            ClusterConfig {
                workers: workers.iter().map(|s| (*s).to_owned()).collect(),
                queue_depth: depth,
            },
        )
    }

    fn line(request: &Request) -> String {
        serde_json::to_string(request).expect("request serializes")
    }

    #[test]
    fn coordinator_streams_a_v2_exchange_end_to_end() {
        let pool = FakePool::new(&[
            ("a", Behavior::Healthy { occupancy: 0 }),
            ("b", Behavior::Healthy { occupancy: 0 }),
        ]);
        let c = coordinator(pool, &["a", "b"], 2);
        let scenarios = grid(4);
        let mut frames: Vec<Response> = Vec::new();
        let served = c
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("cl-1", scenarios))),
                &mut frames,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Eval {
                id: "cl-1".into(),
                cells: 4,
                hits: 0,
                misses: 4,
                streamed: true,
            }
        );
        assert_eq!(frames.len(), 6, "accepted + 4 cells + done: {frames:?}");
        assert_eq!(
            frames[0],
            Response::Accepted {
                id: "cl-1".into(),
                position: 0
            }
        );
        assert!(frames[1..5].iter().all(|f| matches!(f, Response::Cell(_))));
        assert_eq!(
            frames[5],
            Response::Done {
                id: "cl-1".into(),
                hits: 0,
                misses: 4
            }
        );
        assert_eq!(c.gate().occupancy(), 0, "slot released after Done");
        let status = c.status();
        assert_eq!(status.role, "coordinator");
        assert_eq!(status.workers, 2);
        assert_eq!((status.served, status.cells), (1, 4));
    }

    #[test]
    fn coordinator_buffered_v1_collects_cells_in_request_order() {
        let pool = FakePool::new(&[
            ("a", Behavior::Healthy { occupancy: 0 }),
            ("b", Behavior::Healthy { occupancy: 0 }),
        ]);
        let c = coordinator(pool, &["a", "b"], 2);
        let scenarios = grid(5);
        let mut frames: Vec<Response> = Vec::new();
        c.handle_line(
            &line(&Request::Eval(EvalRequest::new("cl-2", scenarios))),
            &mut frames,
        )
        .unwrap();
        let Some(Response::Eval(response)) = frames.first() else {
            panic!("expected one buffered response, got {frames:?}");
        };
        assert_eq!(response.version, API_V1);
        let ids: Vec<&str> = response.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, ["cell-0", "cell-1", "cell-2", "cell-3", "cell-4"]);
        assert_eq!((response.hits, response.misses), (0, 5));
    }

    #[test]
    fn coordinator_answers_busy_when_no_worker_is_reachable_and_gates_overload() {
        let pool = FakePool::new(&[("gone", Behavior::Unreachable)]);
        let c = coordinator(pool, &["gone"], 1);
        // v2: an unreachable cluster is (probably) transient — answer
        // retryable Busy, not a hard failure.
        let mut frames: Vec<Response> = Vec::new();
        let served = c
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("cl-3", grid(2)))),
                &mut frames,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Rejected {
                id: "cl-3".into(),
                retry_after_ms: RETRY_QUANTUM_MS
            }
        );
        assert!(matches!(frames.first(), Some(Response::Busy { .. })));
        assert_eq!(c.gate().occupancy(), 0, "rejection releases the slot");

        // v1 gets the typed Busy refusal in the envelope.
        let mut frames: Vec<Response> = Vec::new();
        c.handle_line(
            &line(&Request::Eval(EvalRequest::new("cl-3b", grid(1)))),
            &mut frames,
        )
        .unwrap();
        let Some(Response::Eval(refusal)) = frames.first() else {
            panic!("expected a v1 refusal, got {frames:?}");
        };
        assert_eq!(refusal.error.as_ref().unwrap().category(), "busy");

        // Gate overload mirrors the single-box behavior.
        let _held = c.gate().try_enter().expect("hold the only slot");
        let mut frames: Vec<Response> = Vec::new();
        let served = c
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("cl-4", grid(1)))),
                &mut frames,
            )
            .unwrap();
        assert!(matches!(served, Served::Rejected { .. }));
        assert!(matches!(frames.first(), Some(Response::Busy { .. })));
        assert_eq!(c.status().rejected, 3, "all three rejections counted");
    }

    #[test]
    fn coordinator_turns_all_busy_workers_into_a_client_busy() {
        let pool = FakePool::new(&[
            ("b1", Behavior::AlwaysBusy { hint: 123 }),
            ("b2", Behavior::AlwaysBusy { hint: 45 }),
        ]);
        let c = coordinator(pool, &["b1", "b2"], 2);
        let mut frames: Vec<Response> = Vec::new();
        let served = c
            .handle_line(
                &line(&Request::Eval(EvalRequest::streaming("cl-5", grid(3)))),
                &mut frames,
            )
            .unwrap();
        assert_eq!(
            served,
            Served::Rejected {
                id: "cl-5".into(),
                retry_after_ms: 123
            }
        );
        // The stream opened with Accepted, then closed with Busy once
        // every worker refused.
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], Response::Accepted { .. }));
        assert_eq!(
            frames[1],
            Response::Busy {
                id: "cl-5".into(),
                retry_after_ms: 123
            }
        );
    }
}
