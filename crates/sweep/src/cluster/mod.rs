//! Multi-host shard fan-out: the cluster coordinator behind
//! `yoco-serve --coordinator` and `sweep cluster serve|workers|run`.
//!
//! One box stopped being the ceiling in PR 4; this module fans a single
//! [`EvalRequest`](crate::api::EvalRequest) out over a configured set of
//! worker hosts — each just a stock `yoco-serve` runtime — and merges
//! the workers' streamed `Cell` frames back into one ordinary v1/v2
//! exchange, the shape distributed DAQ systems use (many producers
//! streaming frames into one coordinator that orders, merges, and
//! survives producer loss):
//!
//! ```text
//!                       ┌──────────────┐   Status / EvalRequest (v2)
//!   client ──(v1/v2)──▶ │ Coordinator  │ ─────────────┬──────────────┐
//!                       │  gate+tally  │              ▼              ▼
//!                       └──────┬───────┘        ┌──────────┐   ┌──────────┐
//!                              │  merged Cell   │ worker A │   │ worker B │
//!                              ◀── frames ──────│ (serve)  │   │ (serve)  │
//!                                               └──────────┘   └──────────┘
//! ```
//!
//! * **Partitioning** reuses the `--shard i/n` round-robin rule
//!   ([`Shard::select_indices`](crate::api::Shard::select_indices)): the
//!   grid is split across the selected workers exactly as a manual
//!   multi-host sharded run would split it.
//! * **Selection** is occupancy-aware: the coordinator probes every
//!   configured worker with the `Status` control frame and dispatches to
//!   live workers least-loaded first ([`pool::select_workers`]).
//! * **Fault tolerance**: a worker lost mid-stream (connection drop) or
//!   refusing admission (`Busy`) has its *unfinished* cells requeued
//!   onto the surviving workers — excluding the failed host — round
//!   after round until the batch completes or no workers remain
//!   ([`fan_out`]).
//! * **Determinism**: workers share the evaluator and cache-key code,
//!   so a cluster run and a single-box run of the same grid produce
//!   identical canonical reports ([`report_from_outcomes`] feeds the
//!   same [`SweepReport::canonical_json`](crate::engine::SweepReport)
//!   path), and warm v1 responses are byte-identical to a single box's.
//!
//! The transport is abstracted behind [`WorkerPool`] — TCP in
//! production ([`TcpPool`]), in-process fakes in the unit tests — so the
//! requeue logic is covered without sockets.

mod coordinator;
mod pool;

pub use coordinator::{
    fan_out, report_from_outcomes, serve_coordinator, ClusterConfig, Coordinator, FanoutOutcome,
    FanoutResult,
};
pub use pool::{select_workers, ShardOutcome, TcpPool, WorkerPool};
