//! The coordinator's view of worker hosts: probe, select, dispatch.
//!
//! [`WorkerPool`] abstracts the transport so the fan-out/requeue logic
//! in [`super::fan_out`] is testable with in-process fakes; [`TcpPool`]
//! is the production implementation, one [`ServeClient`] connection per
//! dispatched sub-request.

use crate::api::{CellOutcome, EvalRequest, Response, StatusReport};
use crate::client::{ServeClient, StreamOutcome};
use std::io;
use std::time::Duration;

/// How one dispatched sub-request ended on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The worker streamed every cell and closed with `Done`.
    Done {
        /// Cells the worker served from its cache.
        hits: usize,
        /// Cells the worker computed (or failed) fresh.
        misses: usize,
    },
    /// The worker's admission queue was full; nothing was evaluated.
    Busy {
        /// The worker's suggested backoff, in milliseconds.
        retry_after_ms: u64,
    },
}

/// The transport to worker hosts. `dispatch` must call `on_cell` once
/// per `Cell` frame *as it arrives* (decoded frame plus the raw line,
/// so the coordinator can forward worker bytes verbatim), and an `Err`
/// means the worker is gone mid-shard — the caller requeues whatever
/// `on_cell` has not delivered.
pub trait WorkerPool: Sync {
    /// Probes one worker's `Status` (liveness + load).
    fn status(&self, addr: &str) -> io::Result<StatusReport>;

    /// Runs one streamed sub-request on one worker.
    fn dispatch(
        &self,
        addr: &str,
        request: EvalRequest,
        on_cell: &mut dyn FnMut(CellOutcome, &str),
    ) -> io::Result<ShardOutcome>;
}

/// The production pool: one TCP connection per probe/dispatch.
#[derive(Debug, Clone, Copy)]
pub struct TcpPool {
    /// Bound on establishing any connection to a worker. Kept short: a
    /// host that blackholes SYNs (powered off, firewalled) must cost a
    /// bounded wait at selection, not the OS default of minutes —
    /// "unreachable workers are skipped" only holds if unreachability
    /// is detected quickly.
    pub connect_timeout: Duration,
    /// Bound on the `Status` probe's answer. Also short: probes run
    /// while the coordinator holds the client's admission slot, so a
    /// hung-but-accepting worker must not stall every request.
    pub probe_timeout: Duration,
    /// Bound on every read during a dispatched sub-request. Generous: a
    /// shard can hold multi-second Monte-Carlo studies, and a silent
    /// worker only stalls its own shard (then requeues).
    pub read_timeout: Duration,
}

impl Default for TcpPool {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(600),
        }
    }
}

impl TcpPool {
    fn connect(&self, addr: &str, read_timeout: Duration) -> io::Result<ServeClient> {
        let mut client = ServeClient::connect_timeout(addr, self.connect_timeout)?;
        client.set_read_timeout(Some(read_timeout))?;
        Ok(client)
    }
}

impl WorkerPool for TcpPool {
    fn status(&self, addr: &str) -> io::Result<StatusReport> {
        self.connect(addr, self.probe_timeout)?.status()
    }

    fn dispatch(
        &self,
        addr: &str,
        request: EvalRequest,
        on_cell: &mut dyn FnMut(CellOutcome, &str),
    ) -> io::Result<ShardOutcome> {
        let mut client = self.connect(addr, self.read_timeout)?;
        let outcome = client.eval_streaming(request, |raw, frame| {
            if let Response::Cell(cell) = frame {
                on_cell(cell.clone(), raw);
            }
        })?;
        Ok(match outcome {
            StreamOutcome::Done { hits, misses, .. } => ShardOutcome::Done { hits, misses },
            StreamOutcome::Busy { retry_after_ms } => ShardOutcome::Busy { retry_after_ms },
        })
    }
}

/// Probes every configured worker — concurrently, so a cluster with
/// several dead hosts costs one probe timeout, not their sum — and
/// returns the live ones, least-loaded first (stable on ties, so the
/// configured order is the tiebreak). Unreachable workers are skipped
/// for this request — they rejoin automatically on the next probe,
/// since selection runs per request. A worker that answers its probe
/// but then refuses admission is handled later by the fan-out's
/// requeue path, not here.
pub fn select_workers(pool: &dyn WorkerPool, workers: &[String]) -> Vec<String> {
    let occupancies: Vec<Option<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .iter()
            .map(|addr| scope.spawn(move || pool.status(addr).ok().map(|s| s.occupancy)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe thread"))
            .collect()
    });
    let mut live: Vec<(usize, String)> = workers
        .iter()
        .zip(occupancies)
        .filter_map(|(addr, occupancy)| occupancy.map(|o| (o, addr.clone())))
        .collect();
    live.sort_by_key(|(occupancy, _)| *occupancy);
    live.into_iter().map(|(_, addr)| addr).collect()
}
