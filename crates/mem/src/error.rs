use std::fmt;

/// Errors produced by the memory models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// An access exceeds the device capacity.
    OutOfCapacity {
        /// Bits requested.
        requested_bits: u64,
        /// Bits available.
        capacity_bits: u64,
    },
    /// A ReRAM region has consumed its write endurance budget.
    EnduranceExceeded {
        /// Writes performed.
        writes: u64,
        /// Rated endurance in write cycles.
        rated: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfCapacity {
                requested_bits,
                capacity_bits,
            } => write!(
                f,
                "access of {requested_bits} bits exceeds capacity of {capacity_bits} bits"
            ),
            MemError::EnduranceExceeded { writes, rated } => {
                write!(
                    f,
                    "{writes} writes exceed rated endurance of {rated} cycles"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_numbers() {
        let e = MemError::EnduranceExceeded {
            writes: 11,
            rated: 10,
        };
        assert!(e.to_string().contains("11"));
        assert!(e.to_string().contains("10"));
    }
}
