//! The 2 KB IMA input/output buffers.
//!
//! Each IMA owns a 2 KB input buffer and a 2 KB output buffer (Table II:
//! 2.9 pJ and 0.112 ns per 256-bit word). Beyond the raw access cost this
//! model tracks *reuse*: the paper's data-reuse argument (§II-A) is that a
//! buffered operand served to several arrays amortizes its fill cost, so the
//! buffer keeps a hit/miss account.

use crate::model::{AccessCost, MemoryModel, MemoryStats};
use serde::{Deserialize, Serialize};

/// Access energy per 256-bit word, pJ (Table II).
pub const BUFFER_ENERGY_PJ_PER_WORD: f64 = 2.9;
/// Access latency per 256-bit word, ns (Table II).
pub const BUFFER_LATENCY_NS_PER_WORD: f64 = 0.112;
/// Word width in bits.
pub const BUFFER_WORD_BITS: u64 = 256;
/// Area of the 4 KB (input + output) buffer pair, µm² (Table II).
pub const BUFFER_PAIR_AREA_UM2: f64 = 4_656.0;

/// One IMA data buffer with reuse accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoBuffer {
    capacity_bytes: u64,
    stats: MemoryStats,
    hits: u64,
    misses: u64,
}

impl IoBuffer {
    /// Creates a buffer of `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            stats: MemoryStats::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// The YOCO IMA buffer: 2 KB.
    pub fn ima_default() -> Self {
        Self::new(2 * 1024)
    }

    /// Records a reuse hit (operand already resident).
    pub fn record_hit(&mut self, bits: u64) {
        self.hits += 1;
        self.stats.bits_read += bits;
        self.stats.reads += 1;
    }

    /// Records a miss (operand had to be fetched from the tile eDRAM).
    pub fn record_miss(&mut self, bits: u64) {
        self.misses += 1;
        self.stats.bits_written += bits;
        self.stats.writes += 1;
    }

    /// Hit rate over all recorded lookups (0 when none recorded).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

impl MemoryModel for IoBuffer {
    fn capacity_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }

    fn read_cost(&self, bits: u64) -> AccessCost {
        let words = (bits as f64 / BUFFER_WORD_BITS as f64).ceil().max(1.0);
        AccessCost::new(
            words * BUFFER_ENERGY_PJ_PER_WORD,
            words * BUFFER_LATENCY_NS_PER_WORD,
        )
    }

    fn write_cost(&self, bits: u64) -> AccessCost {
        self.read_cost(bits)
    }

    fn area_um2(&self) -> f64 {
        // Half the buffer-pair area per 2 KB instance.
        BUFFER_PAIR_AREA_UM2 / 2.0 * self.capacity_bytes as f64 / (2.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_granular_costs() {
        let b = IoBuffer::ima_default();
        // 1024 bytes = 32 words.
        let c = b.read_cost(1024 * 8);
        assert!((c.energy_pj - 32.0 * 2.9).abs() < 1e-9);
        assert!((c.latency_ns - 32.0 * 0.112).abs() < 1e-9);
        // Sub-word access still costs one word.
        assert!((b.read_cost(8).energy_pj - 2.9).abs() < 1e-9);
    }

    #[test]
    fn reuse_accounting() {
        let mut b = IoBuffer::ima_default();
        assert_eq!(b.hit_rate(), 0.0);
        b.record_miss(256);
        b.record_hit(256);
        b.record_hit(256);
        b.record_hit(256);
        assert!((b.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn capacity_matches_table2() {
        let b = IoBuffer::ima_default();
        assert_eq!(b.capacity_bits(), 2 * 1024 * 8);
        assert!(b.area_um2() > 0.0);
    }
}
