//! # yoco-mem — memory substrates for the YOCO reproduction
//!
//! YOCO is a *hybrid-memory* architecture: dynamic IMAs (DIMAs) back their
//! MCC clusters with SRAM for fast, endurance-free weight updates, while
//! static IMAs (SIMAs) use dense 1T1R ReRAM for resident model weights.
//! Tiles add a 128 KB eDRAM I/O cache and 2 KB IMA buffers. The paper
//! models these with CACTI \[11\] and TIMELY's ReRAM parameters \[7\]; this
//! crate provides equivalent analytical models:
//!
//! * [`model`] — the [`MemoryModel`] trait and access-cost bookkeeping
//! * [`sram`] — 6T SRAM arrays (DIMA clusters, quantization memory)
//! * [`reram`] — 1T1R ReRAM arrays with endurance tracking (SIMA clusters)
//! * [`edram`] — embedded DRAM with refresh (tile I/O cache)
//! * [`buffer`] — the 2 KB IMA input/output buffers
//! * [`cacti`] — CACTI-style capacity scaling used to size baseline buffers
//!
//! ```
//! use yoco_mem::{MemoryModel, SramArray};
//!
//! let sram = SramArray::new(2 * 1024); // 2 KB
//! let cost = sram.read_cost(256);
//! assert!(cost.energy_pj > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod cacti;
pub mod edram;
mod error;
pub mod model;
pub mod reram;
pub mod sram;
pub mod wear;

pub use buffer::IoBuffer;
pub use edram::EdramArray;
pub use error::MemError;
pub use model::{AccessCost, MemoryModel, MemoryStats};
pub use reram::ReramArray;
pub use sram::SramArray;
pub use wear::{WearLeveledCluster, WearPolicy};
