//! Wear leveling across ReRAM cluster slots.
//!
//! Each SIMA MCC cluster holds 32 one-bit 1T1R cells behind a MUX
//! (Table II). When a cluster position must be rewritten repeatedly, the
//! controller can rotate across the 32 slots instead of hammering one cell
//! — a 32× endurance extension for workloads that do occasionally update
//! static weights (fine-tuning deltas, LoRA-style adapters). This module
//! models that rotation policy and quantifies the lifetime gain.

use crate::reram::RERAM_ENDURANCE_CYCLES;
use crate::MemError;
use serde::{Deserialize, Serialize};

/// Rotation policy of a multi-slot cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WearPolicy {
    /// Always write the currently selected slot (no leveling).
    Fixed,
    /// Round-robin across all slots.
    RoundRobin,
}

/// A wear-managed ReRAM cluster of `slots` one-bit cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearLeveledCluster {
    slots: usize,
    policy: WearPolicy,
    writes_per_slot: Vec<u64>,
    cursor: usize,
}

impl WearLeveledCluster {
    /// Creates a cluster with the SIMA slot count (32) and the given policy.
    pub fn sima_default(policy: WearPolicy) -> Self {
        Self::new(32, policy)
    }

    /// Creates a cluster with an explicit slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, policy: WearPolicy) -> Self {
        assert!(slots > 0, "cluster needs at least one slot");
        Self {
            slots,
            policy,
            writes_per_slot: vec![0; slots],
            cursor: 0,
        }
    }

    /// Records one weight rewrite into the cluster and returns the slot
    /// written.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EnduranceExceeded`] once the written slot passes
    /// its rated endurance.
    pub fn rewrite(&mut self) -> Result<usize, MemError> {
        let slot = match self.policy {
            WearPolicy::Fixed => self.cursor,
            WearPolicy::RoundRobin => {
                let s = self.cursor;
                self.cursor = (self.cursor + 1) % self.slots;
                s
            }
        };
        self.writes_per_slot[slot] += 1;
        if self.writes_per_slot[slot] > RERAM_ENDURANCE_CYCLES {
            return Err(MemError::EnduranceExceeded {
                writes: self.writes_per_slot[slot],
                rated: RERAM_ENDURANCE_CYCLES,
            });
        }
        Ok(slot)
    }

    /// Worst per-slot wear as a fraction of rated endurance.
    pub fn max_wear_fraction(&self) -> f64 {
        let max = self.writes_per_slot.iter().copied().max().unwrap_or(0);
        max as f64 / RERAM_ENDURANCE_CYCLES as f64
    }

    /// How evenly wear is spread: max/mean writes (1.0 = perfectly even).
    pub fn wear_imbalance(&self) -> f64 {
        let max = *self.writes_per_slot.iter().max().unwrap_or(&0) as f64;
        let total: u64 = self.writes_per_slot.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.slots as f64;
        max / mean
    }

    /// Total rewrites the cluster can absorb before any slot dies.
    pub fn rated_rewrites(&self) -> u64 {
        match self.policy {
            WearPolicy::Fixed => RERAM_ENDURANCE_CYCLES,
            WearPolicy::RoundRobin => RERAM_ENDURANCE_CYCLES * self.slots as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_wear_evenly() {
        let mut c = WearLeveledCluster::new(4, WearPolicy::RoundRobin);
        for _ in 0..400 {
            c.rewrite().expect("far from endurance");
        }
        assert!((c.wear_imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(c.writes_per_slot, vec![100; 4]);
    }

    #[test]
    fn fixed_policy_hammers_one_slot() {
        let mut c = WearLeveledCluster::new(4, WearPolicy::Fixed);
        for _ in 0..400 {
            c.rewrite().expect("far from endurance");
        }
        assert_eq!(c.writes_per_slot[0], 400);
        assert!((c.wear_imbalance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leveling_extends_rated_life_by_slot_count() {
        let fixed = WearLeveledCluster::sima_default(WearPolicy::Fixed);
        let rr = WearLeveledCluster::sima_default(WearPolicy::RoundRobin);
        assert_eq!(rr.rated_rewrites(), 32 * fixed.rated_rewrites());
    }

    #[test]
    fn endurance_error_fires_on_the_hot_slot() {
        let mut c = WearLeveledCluster::new(2, WearPolicy::Fixed);
        c.writes_per_slot[0] = RERAM_ENDURANCE_CYCLES;
        assert!(matches!(
            c.rewrite(),
            Err(MemError::EnduranceExceeded { .. })
        ));
    }

    #[test]
    fn wear_fraction_tracks_writes() {
        let mut c = WearLeveledCluster::new(2, WearPolicy::RoundRobin);
        for _ in 0..10 {
            c.rewrite().expect("ok");
        }
        assert!(c.max_wear_fraction() > 0.0);
        assert!(c.max_wear_fraction() < 1e-6);
    }
}
