//! 6T SRAM model.
//!
//! SRAM backs the DIMA memory clusters (8 one-bit cells per MCC, Table II)
//! and the 32 KB quantization memory. It is the performance-prioritized half
//! of the hybrid design: sub-nanosecond writes and effectively unlimited
//! endurance, at roughly 4× the area per bit of 1T1R ReRAM.

use crate::model::{AccessCost, MemoryModel, MemoryStats};
use serde::{Deserialize, Serialize};

/// Area of one 6T SRAM bit cell at 28 nm, µm² (Table II memory-cell row).
pub const SRAM_CELL_AREA_UM2: f64 = 0.096;
/// Read energy per bit, pJ (CACTI-class small-array figure at 28 nm).
pub const SRAM_READ_ENERGY_PJ_PER_BIT: f64 = 0.012;
/// Write energy per bit, pJ.
pub const SRAM_WRITE_ENERGY_PJ_PER_BIT: f64 = 0.015;
/// Access latency per 256-bit word, ns.
pub const SRAM_WORD_LATENCY_NS: f64 = 0.35;

/// An SRAM array of a given capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramArray {
    capacity_bytes: u64,
    stats: MemoryStats,
}

impl SramArray {
    /// Creates an SRAM array of `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            stats: MemoryStats::default(),
        }
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Records a read for the statistics (costs are pure; recording is the
    /// caller's choice).
    pub fn record_read(&mut self, bits: u64) {
        self.stats.bits_read += bits;
        self.stats.reads += 1;
    }

    /// Records a write for the statistics.
    pub fn record_write(&mut self, bits: u64) {
        self.stats.bits_written += bits;
        self.stats.writes += 1;
    }
}

impl MemoryModel for SramArray {
    fn capacity_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }

    fn read_cost(&self, bits: u64) -> AccessCost {
        let words = (bits as f64 / 256.0).ceil().max(1.0);
        AccessCost::new(
            bits as f64 * SRAM_READ_ENERGY_PJ_PER_BIT,
            words * SRAM_WORD_LATENCY_NS,
        )
    }

    fn write_cost(&self, bits: u64) -> AccessCost {
        let words = (bits as f64 / 256.0).ceil().max(1.0);
        AccessCost::new(
            bits as f64 * SRAM_WRITE_ENERGY_PJ_PER_BIT,
            words * SRAM_WORD_LATENCY_NS,
        )
    }

    fn area_um2(&self) -> f64 {
        self.capacity_bits() as f64 * SRAM_CELL_AREA_UM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_area() {
        let s = SramArray::new(2048);
        assert_eq!(s.capacity_bits(), 16384);
        assert!((s.area_um2() - 16384.0 * 0.096).abs() < 1e-6);
        assert!((s.density_bits_per_um2() - 1.0 / 0.096).abs() < 1e-9);
    }

    #[test]
    fn write_cost_exceeds_read_cost() {
        let s = SramArray::new(2048);
        assert!(s.write_cost(256).energy_pj > s.read_cost(256).energy_pj);
    }

    #[test]
    fn latency_scales_with_words() {
        let s = SramArray::new(2048);
        let one = s.read_cost(256).latency_ns;
        let four = s.read_cost(1024).latency_ns;
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = SramArray::new(2048);
        s.record_read(256);
        s.record_write(128);
        s.record_read(64);
        let st = s.stats();
        assert_eq!(st.bits_read, 320);
        assert_eq!(st.bits_written, 128);
        assert_eq!(st.reads, 2);
        assert_eq!(st.writes, 1);
    }
}
