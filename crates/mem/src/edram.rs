//! Embedded DRAM model (tile I/O cache).
//!
//! Each YOCO tile carries a 128 KB eDRAM for 8-bit inputs and outputs plus a
//! 32 KB quantization memory (Table II: 0.1 pJ/bit, 128 GB/s, 0.2 mm²).
//! eDRAM needs periodic refresh, which this model accounts as a background
//! power draw.

use crate::model::{AccessCost, MemoryModel, MemoryStats};
use serde::{Deserialize, Serialize};

/// Access energy, pJ per bit (Table II).
pub const EDRAM_ENERGY_PJ_PER_BIT: f64 = 0.1;
/// Peak bandwidth, GB/s (Table II).
pub const EDRAM_BANDWIDTH_GBPS: f64 = 128.0;
/// Retention time before a row must be refreshed, µs.
pub const EDRAM_RETENTION_US: f64 = 40.0;
/// Refresh energy per bit per refresh, pJ.
pub const EDRAM_REFRESH_PJ_PER_BIT: f64 = 0.002;
/// Area of the 128 KB instance, mm² (Table II).
pub const EDRAM_128KB_AREA_MM2: f64 = 0.2;

/// An eDRAM array of a given capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdramArray {
    capacity_bytes: u64,
    stats: MemoryStats,
}

impl EdramArray {
    /// Creates an eDRAM array of `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            stats: MemoryStats::default(),
        }
    }

    /// The tile I/O cache: 128 KB.
    pub fn tile_cache() -> Self {
        Self::new(128 * 1024)
    }

    /// Transfer latency for `bits` at peak bandwidth, ns.
    pub fn transfer_latency_ns(bits: u64) -> f64 {
        let bytes = bits as f64 / 8.0;
        bytes / (EDRAM_BANDWIDTH_GBPS * 1e9) * 1e9
    }

    /// Background refresh power for the whole array, in watts.
    pub fn refresh_power_w(&self) -> f64 {
        let refreshes_per_s = 1.0e6 / EDRAM_RETENTION_US;
        self.capacity_bits() as f64 * EDRAM_REFRESH_PJ_PER_BIT * 1e-12 * refreshes_per_s
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Records a read for the statistics.
    pub fn record_read(&mut self, bits: u64) {
        self.stats.bits_read += bits;
        self.stats.reads += 1;
    }

    /// Records a write for the statistics.
    pub fn record_write(&mut self, bits: u64) {
        self.stats.bits_written += bits;
        self.stats.writes += 1;
    }
}

impl MemoryModel for EdramArray {
    fn capacity_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }

    fn read_cost(&self, bits: u64) -> AccessCost {
        AccessCost::new(
            bits as f64 * EDRAM_ENERGY_PJ_PER_BIT,
            Self::transfer_latency_ns(bits),
        )
    }

    fn write_cost(&self, bits: u64) -> AccessCost {
        self.read_cost(bits)
    }

    fn area_um2(&self) -> f64 {
        // Scale linearly from the 128 KB reference instance.
        EDRAM_128KB_AREA_MM2 * 1e6 * self.capacity_bytes as f64 / (128.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_cache_matches_table2() {
        let e = EdramArray::tile_cache();
        assert_eq!(e.capacity_bits(), 128 * 1024 * 8);
        assert!((e.area_um2() - 0.2e6).abs() < 1.0);
        assert!((e.read_cost(8).energy_pj - 0.8).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bounds_latency() {
        // 128 bytes at 128 GB/s = 1 ns.
        let ns = EdramArray::transfer_latency_ns(128 * 8);
        assert!((ns - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_power_is_small_but_nonzero() {
        let e = EdramArray::tile_cache();
        let p = e.refresh_power_w();
        assert!(p > 0.0 && p < 0.01, "refresh power {p} W");
    }
}
