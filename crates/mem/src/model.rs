//! The [`MemoryModel`] trait and access-cost bookkeeping shared by every
//! memory technology in the workspace.

use serde::{Deserialize, Serialize};

/// Cost of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessCost {
    /// Dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
}

impl AccessCost {
    /// Creates a cost record.
    pub fn new(energy_pj: f64, latency_ns: f64) -> Self {
        Self {
            energy_pj,
            latency_ns,
        }
    }

    /// Component-wise sum (energies add; latencies add, i.e. serial access).
    pub fn plus(self, other: Self) -> Self {
        Self {
            energy_pj: self.energy_pj + other.energy_pj,
            latency_ns: self.latency_ns + other.latency_ns,
        }
    }

    /// Scales both components by a count of identical accesses.
    pub fn scaled(self, count: f64) -> Self {
        Self {
            energy_pj: self.energy_pj * count,
            latency_ns: self.latency_ns * count,
        }
    }
}

/// Cumulative access statistics of one memory instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Total bits read.
    pub bits_read: u64,
    /// Total bits written.
    pub bits_written: u64,
    /// Number of read transactions.
    pub reads: u64,
    /// Number of write transactions.
    pub writes: u64,
}

/// Common interface of every memory technology model.
///
/// Implementations are *analytical*: they return the energy/latency of an
/// access and keep aggregate statistics, but do not store data contents
/// (functional storage lives with the consumers, e.g. the array weight
/// matrices in `yoco-circuit`).
pub trait MemoryModel {
    /// Capacity in bits.
    fn capacity_bits(&self) -> u64;

    /// Cost of reading `bits` bits (bursting is up to the implementation).
    fn read_cost(&self, bits: u64) -> AccessCost;

    /// Cost of writing `bits` bits.
    fn write_cost(&self, bits: u64) -> AccessCost;

    /// Silicon area in square micrometres.
    fn area_um2(&self) -> f64;

    /// Silicon area in square millimetres (the unit chip-level roll-ups
    /// compose in, e.g. `YocoChip::area_mm2`).
    fn area_mm2(&self) -> f64 {
        self.area_um2() / 1e6
    }

    /// Energy per bit of a *read*, in picojoules (convenience).
    fn read_energy_per_bit_pj(&self) -> f64 {
        self.read_cost(1).energy_pj
    }

    /// Density in bits per square micrometre.
    fn density_bits_per_um2(&self) -> f64 {
        self.capacity_bits() as f64 / self.area_um2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = AccessCost::new(2.0, 1.0);
        let b = AccessCost::new(1.0, 0.5);
        let s = a.plus(b);
        assert!((s.energy_pj - 3.0).abs() < 1e-12);
        assert!((s.latency_ns - 1.5).abs() < 1e-12);
        let x = a.scaled(4.0);
        assert!((x.energy_pj - 8.0).abs() < 1e-12);
    }
}
