//! CACTI-style analytical scaling of SRAM buffer cost with capacity.
//!
//! The paper models on-chip interconnect, SFU, buffers, and eDRAM with
//! CACTI 6.0 \[11\]. For the baseline accelerators (ISAAC's eDRAM buffers,
//! RAELLA's larger SRAM buffers, TIMELY's analog local buffers) we need
//! access energy and area at capacities other than YOCO's design points.
//! CACTI's detailed wire/bank model reduces, over the capacity range we
//! care about (kilobytes to megabytes), to well-known power laws: access
//! energy per bit grows roughly with the square root of capacity (bitline
//! and H-tree length), and area grows slightly super-linearly (peripheral
//! overhead amortizes, wires do not).

use serde::{Deserialize, Serialize};

/// Analytical SRAM cost model calibrated at YOCO's 2 KB buffer point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CactiModel {
    /// Reference capacity, bytes.
    pub ref_bytes: f64,
    /// Access energy per 256-bit word at the reference point, pJ.
    pub ref_word_energy_pj: f64,
    /// Access latency per word at the reference point, ns.
    pub ref_word_latency_ns: f64,
    /// Area per bit at the reference point, µm².
    pub ref_area_per_bit_um2: f64,
    /// Energy scaling exponent vs capacity (≈0.5: bitline/H-tree length).
    pub energy_exponent: f64,
    /// Latency scaling exponent vs capacity.
    pub latency_exponent: f64,
}

impl CactiModel {
    /// Model calibrated at the Table II 2 KB / 2.9 pJ / 0.112 ns point.
    pub fn sram_28nm() -> Self {
        Self {
            ref_bytes: 2.0 * 1024.0,
            ref_word_energy_pj: 2.9,
            ref_word_latency_ns: 0.112,
            ref_area_per_bit_um2: 0.142, // cell + periphery at 2 KB
            energy_exponent: 0.5,
            latency_exponent: 0.45,
        }
    }

    /// Access energy per 256-bit word at an arbitrary capacity, pJ.
    pub fn word_energy_pj(&self, capacity_bytes: f64) -> f64 {
        self.ref_word_energy_pj * (capacity_bytes / self.ref_bytes).powf(self.energy_exponent)
    }

    /// Access latency per word at an arbitrary capacity, ns.
    pub fn word_latency_ns(&self, capacity_bytes: f64) -> f64 {
        self.ref_word_latency_ns * (capacity_bytes / self.ref_bytes).powf(self.latency_exponent)
    }

    /// Total area at an arbitrary capacity, µm².
    pub fn area_um2(&self, capacity_bytes: f64) -> f64 {
        // Slightly super-linear: fixed periphery amortizes but wires grow.
        let bits = capacity_bytes * 8.0;
        bits * self.ref_area_per_bit_um2 * (capacity_bytes / self.ref_bytes).powf(0.05)
    }

    /// Energy per bit at an arbitrary capacity, pJ.
    pub fn energy_per_bit_pj(&self, capacity_bytes: f64) -> f64 {
        self.word_energy_pj(capacity_bytes) / 256.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_round_trips() {
        let m = CactiModel::sram_28nm();
        assert!((m.word_energy_pj(2048.0) - 2.9).abs() < 1e-9);
        assert!((m.word_latency_ns(2048.0) - 0.112).abs() < 1e-9);
    }

    #[test]
    fn energy_grows_sublinearly_with_capacity() {
        let m = CactiModel::sram_28nm();
        let e2k = m.word_energy_pj(2048.0);
        let e32k = m.word_energy_pj(32.0 * 1024.0);
        // 16x capacity -> 4x word energy at exponent 0.5.
        assert!((e32k / e2k - 4.0).abs() < 1e-9);
    }

    #[test]
    fn area_is_roughly_linear() {
        let m = CactiModel::sram_28nm();
        let a1 = m.area_um2(2048.0);
        let a16 = m.area_um2(16.0 * 2048.0);
        let ratio = a16 / a1;
        assert!(ratio > 16.0 && ratio < 20.0, "ratio {ratio}");
    }
}
