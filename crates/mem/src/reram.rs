//! 1T1R ReRAM model with endurance tracking.
//!
//! ReRAM backs the SIMA memory clusters (32 one-bit 1T1R cells per MCC).
//! Parameters follow TIMELY \[7\] as cited in the paper's methodology:
//! 1 kΩ / 20 kΩ on/off resistance at 1-bit precision. ReRAM is the
//! density-prioritized half of the hybrid design; its weakness — the reason
//! YOCO adds SRAM DIMAs — is the write path: writes are orders of magnitude
//! more expensive than SRAM and wear the cell out.

use crate::model::{AccessCost, MemoryModel, MemoryStats};
use crate::MemError;
use serde::{Deserialize, Serialize};

/// On-state resistance, ohms (TIMELY parameters).
pub const RERAM_R_ON_OHM: f64 = 1_000.0;
/// Off-state resistance, ohms.
pub const RERAM_R_OFF_OHM: f64 = 20_000.0;
/// Area of one 1T1R cell at 28 nm, µm² (4× denser than the 6T SRAM cell;
/// 32 cells match the 0.8 µm² MOM-capacitor footprint, Table II).
pub const RERAM_CELL_AREA_UM2: f64 = 0.024;
/// SET/RESET write energy per bit, pJ.
pub const RERAM_WRITE_ENERGY_PJ_PER_BIT: f64 = 2.0;
/// Write pulse latency per word, ns.
pub const RERAM_WRITE_LATENCY_NS: f64 = 50.0;
/// Read energy per bit, pJ (rarely used: in-situ compute reads for free).
pub const RERAM_READ_ENERGY_PJ_PER_BIT: f64 = 0.04;
/// Read latency per 256-bit word, ns.
pub const RERAM_READ_LATENCY_NS: f64 = 1.5;
/// Rated endurance, write cycles per cell.
pub const RERAM_ENDURANCE_CYCLES: u64 = 100_000_000;

/// A 1T1R ReRAM array with aggregate wear tracking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReramArray {
    capacity_bytes: u64,
    stats: MemoryStats,
    /// Worst-case per-cell write count (conservative: assumes the hottest
    /// cell absorbs the max of each transaction).
    hottest_cell_writes: u64,
}

impl ReramArray {
    /// Creates a ReRAM array of `capacity_bytes` bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            stats: MemoryStats::default(),
            hottest_cell_writes: 0,
        }
    }

    /// On/off conductance ratio (`R_off / R_on = 20`).
    pub fn on_off_ratio() -> f64 {
        RERAM_R_OFF_OHM / RERAM_R_ON_OHM
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Worst-case cell wear as a fraction of rated endurance.
    pub fn wear_fraction(&self) -> f64 {
        self.hottest_cell_writes as f64 / RERAM_ENDURANCE_CYCLES as f64
    }

    /// Records a full-array rewrite (each cell written once).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EnduranceExceeded`] once the hottest cell passes
    /// its rated endurance; the write is still counted (the device does not
    /// know it is dying).
    pub fn record_rewrite(&mut self) -> Result<(), MemError> {
        self.stats.bits_written += self.capacity_bits();
        self.stats.writes += 1;
        self.hottest_cell_writes += 1;
        if self.hottest_cell_writes > RERAM_ENDURANCE_CYCLES {
            return Err(MemError::EnduranceExceeded {
                writes: self.hottest_cell_writes,
                rated: RERAM_ENDURANCE_CYCLES,
            });
        }
        Ok(())
    }

    /// Records a read for the statistics.
    pub fn record_read(&mut self, bits: u64) {
        self.stats.bits_read += bits;
        self.stats.reads += 1;
    }

    /// How long a dynamic workload rewriting the array `rewrites_per_second`
    /// times would last before wearing out, in seconds. This is the paper's
    /// §I argument for why ReRAM alone cannot host attention's K/Q/V
    /// matrices.
    pub fn lifetime_seconds(rewrites_per_second: f64) -> f64 {
        RERAM_ENDURANCE_CYCLES as f64 / rewrites_per_second
    }
}

impl MemoryModel for ReramArray {
    fn capacity_bits(&self) -> u64 {
        self.capacity_bytes * 8
    }

    fn read_cost(&self, bits: u64) -> AccessCost {
        let words = (bits as f64 / 256.0).ceil().max(1.0);
        AccessCost::new(
            bits as f64 * RERAM_READ_ENERGY_PJ_PER_BIT,
            words * RERAM_READ_LATENCY_NS,
        )
    }

    fn write_cost(&self, bits: u64) -> AccessCost {
        let words = (bits as f64 / 256.0).ceil().max(1.0);
        AccessCost::new(
            bits as f64 * RERAM_WRITE_ENERGY_PJ_PER_BIT,
            words * RERAM_WRITE_LATENCY_NS,
        )
    }

    fn area_um2(&self) -> f64 {
        self.capacity_bits() as f64 * RERAM_CELL_AREA_UM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramArray;

    #[test]
    fn on_off_ratio_matches_timely_params() {
        assert!((ReramArray::on_off_ratio() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn denser_but_costlier_to_write_than_sram() {
        let r = ReramArray::new(2048);
        let s = SramArray::new(2048);
        assert!(r.density_bits_per_um2() > 3.9 * s.density_bits_per_um2());
        assert!(r.write_cost(256).energy_pj > 50.0 * s.write_cost(256).energy_pj);
        assert!(r.write_cost(256).latency_ns > 50.0 * s.write_cost(256).latency_ns);
    }

    #[test]
    fn cluster_area_matches_capacitor_footprint() {
        // 32 ReRAM bits and 8 SRAM bits both fit the 0.8 um^2 MOM cap.
        assert!((32.0 * RERAM_CELL_AREA_UM2 - 0.768).abs() < 1e-9);
        assert!((8.0 * crate::sram::SRAM_CELL_AREA_UM2 - 0.768).abs() < 1e-9);
    }

    #[test]
    fn endurance_is_finite() {
        let mut r = ReramArray::new(16);
        // Simulate wear: fast-forward the counter near the limit.
        for _ in 0..10 {
            r.record_rewrite().unwrap();
        }
        assert!(r.wear_fraction() > 0.0);
        // A token-per-rewrite attention workload at 50 MHz would chew
        // through rated endurance in under an hour.
        let life = ReramArray::lifetime_seconds(50.0e6);
        assert!(life < 3600.0, "lifetime {life} s");
    }

    #[test]
    fn endurance_error_once_exceeded() {
        let mut r = ReramArray::new(1);
        r.hottest_cell_writes = RERAM_ENDURANCE_CYCLES;
        assert!(matches!(
            r.record_rewrite(),
            Err(MemError::EnduranceExceeded { .. })
        ));
    }
}
