//! Cross-crate integration tests: the paper's headline claims, checked
//! end to end through the public APIs.

use rand::{Rng, SeedableRng};
use yoco::{Ima, ImaRole, YocoChip, YocoConfig};
use yoco_arch::accelerator::Accelerator;
use yoco_arch::workload::{LayerKind, MatmulWorkload};
use yoco_baselines::{isaac::isaac, raella::raella, timely::timely};
use yoco_nn::models;

/// The headline: one IMA executes an 8-bit 1024x256 VMM at 123.8 TOPS/W and
/// 34.9 TOPS.
#[test]
fn headline_operating_point() {
    let chip = YocoChip::paper_default();
    let peak = chip.peak_vmm_cost();
    assert!((peak.tops_per_watt() - 123.8).abs() / 123.8 < 0.03);
    assert!((peak.tops() - 34.9).abs() / 34.9 < 0.03);
    assert!((peak.energy.as_nano() - 4.235).abs() / 4.235 < 0.02);
    assert!(peak.latency.as_nano() <= 15.05);
}

/// A functional charge-domain VMM through an IMA (arrays -> TDA -> TDC)
/// digitizes exact dot products to within one output LSB (ideal noise).
#[test]
fn functional_ima_vmm_is_correct() {
    let config = YocoConfig::builder()
        .ima_stack(2)
        .ima_width(2)
        .noise(yoco_circuit::NoiseModel::ideal())
        .build()
        .expect("valid config");
    let rows = config.ima_rows();
    let outputs = config.ima_outputs();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
    let weights: Vec<Vec<u32>> = (0..rows)
        .map(|_| (0..outputs).map(|_| rng.gen_range(0..256)).collect())
        .collect();
    let ima = Ima::new(&config, ImaRole::Static, &weights).expect("valid weights");
    let inputs: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..256)).collect();
    let codes = ima.compute_vmm(&inputs, 0).expect("valid inputs");
    for (j, &code) in codes.iter().enumerate() {
        let exact: f64 = (0..rows)
            .map(|r| inputs[r] as f64 * weights[r][j] as f64)
            .sum();
        assert!(
            (code as i64 - ima.dot_to_code(exact) as i64).abs() <= 1,
            "output {j}"
        );
    }
}

/// Fig 8 shape: YOCO beats every baseline on every benchmark's energy
/// efficiency, and the geomeans land in a band around the paper's numbers.
#[test]
fn fig8_shape_holds() {
    let chip = YocoChip::paper_default();
    let baselines: [&dyn Accelerator; 3] = [&isaac(), &raella(), &timely()];
    let mut ee_ratios = vec![Vec::new(); 3];
    let mut tp_ratios = vec![Vec::new(); 3];
    for model in models::fig8_benchmarks() {
        let w = model.workloads();
        let y = chip.evaluate_model(&model.name, &w);
        for (i, b) in baselines.iter().enumerate() {
            let r = b.evaluate_model(&model.name, &w);
            let ee = y.tops_per_watt() / r.tops_per_watt();
            let tp = y.tops() / r.tops();
            assert!(ee > 1.0, "{}: EE ratio {ee} vs {}", model.name, b.name());
            assert!(tp > 1.0, "{}: TP ratio {tp} vs {}", model.name, b.name());
            ee_ratios[i].push(ee);
            tp_ratios[i].push(tp);
        }
    }
    let geomean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    // Paper geomeans: EE 19.9 / 4.7 / 3.9; TP 33.6 / 20.4 / 6.8. Accept a
    // +-30 % band — shape, not silicon-exact numbers.
    let ee_target = [19.9, 4.7, 3.9];
    let tp_target = [33.6, 20.4, 6.8];
    for i in 0..3 {
        let ee = geomean(&ee_ratios[i]);
        let tp = geomean(&tp_ratios[i]);
        assert!(
            (ee / ee_target[i] - 1.0).abs() < 0.3,
            "EE geomean {} vs target {}",
            ee,
            ee_target[i]
        );
        assert!(
            (tp / tp_target[i] - 1.0).abs() < 0.3,
            "TP geomean {} vs target {}",
            tp,
            tp_target[i]
        );
    }
}

/// The ordering the paper's Table I implies: ISAAC < RAELLA < TIMELY < YOCO
/// in energy efficiency on a clean GEMM.
#[test]
fn efficiency_ordering_on_clean_gemm() {
    let w = MatmulWorkload::new("fc", 512, 2048, 2048);
    let chip = YocoChip::paper_default();
    let y = chip.evaluate(&w).tops_per_watt();
    let i = isaac().evaluate(&w).tops_per_watt();
    let r = raella().evaluate(&w).tops_per_watt();
    let t = timely().evaluate(&w).tops_per_watt();
    assert!(
        i < r && r < t && t < y,
        "ordering: isaac {i}, raella {r}, timely {t}, yoco {y}"
    );
}

/// Hybrid-memory discriminator: on dynamic attention GEMMs the ReRAM
/// baselines pay a much larger write penalty than YOCO's SRAM DIMAs.
#[test]
fn dynamic_gemm_penalty_is_asymmetric() {
    let stat = MatmulWorkload::new("fc", 256, 1024, 1024);
    let dynamic =
        MatmulWorkload::new("score", 256, 1024, 1024).with_kind(LayerKind::AttentionContext);
    let chip = YocoChip::paper_default();
    let yoco_overhead = chip.evaluate(&dynamic).energy_pj / chip.evaluate(&stat).energy_pj;
    let isaac_overhead = isaac().evaluate(&dynamic).energy_pj / isaac().evaluate(&stat).energy_pj;
    assert!(yoco_overhead < 1.1, "yoco dynamic overhead {yoco_overhead}");
    assert!(
        isaac_overhead > yoco_overhead,
        "isaac {isaac_overhead} vs yoco {yoco_overhead}"
    );
}

/// Model zoo sanity: every Fig 8 benchmark lowers to valid workloads and
/// evaluates to finite, nonzero costs on all four accelerators.
#[test]
fn zoo_evaluates_everywhere() {
    let chip = YocoChip::paper_default();
    let baselines: [&dyn Accelerator; 3] = [&isaac(), &raella(), &timely()];
    for model in models::fig8_benchmarks() {
        let w = model.workloads();
        assert!(!w.is_empty());
        let y = chip.evaluate_model(&model.name, &w);
        assert!(y.total.energy_pj.is_finite() && y.total.energy_pj > 0.0);
        assert!(y.total.latency_ns.is_finite() && y.total.latency_ns > 0.0);
        for b in &baselines {
            let r = b.evaluate_model(&model.name, &w);
            assert!(r.total.energy_pj > 0.0 && r.total.latency_ns > 0.0);
            assert_eq!(r.total.ops, y.total.ops, "op counts must agree");
        }
    }
}
