//! Integration tests for the extension features: digital calibration,
//! fault campaigns, PVT corners, placement, decode mode, scheduling, and
//! wear leveling — the "beyond the figures" surface of the library.

use yoco::{decode_attention_layer, plan_placement, YocoChip, YocoConfig};
use yoco_circuit::calib::DigitalCalibration;
use yoco_circuit::fast::MacErrorModel;
use yoco_circuit::faults::{random_campaign, Fault};
use yoco_circuit::{noise_at, ArrayGeometry, DetailedArray, ProcessCorner};
use yoco_mem::{WearLeveledCluster, WearPolicy};
use yoco_nn::models;

/// Digital calibration characterized on the *behavioural array* (not just
/// the surrogate) recovers most of the deterministic error.
#[test]
fn calibration_works_on_the_detailed_array() {
    let geom = ArrayGeometry::yoco_default();
    let weights = vec![vec![255u32; 32]; 128];
    let noise = yoco_circuit::NoiseModel {
        cap_mismatch_sigma: 0.0,
        readout_offset_sigma: 0.0,
        ..yoco_circuit::NoiseModel::tt_corner()
    };
    let array = DetailedArray::with_noise(
        geom,
        &weights,
        yoco_circuit::MemoryKind::Sram,
        noise,
        yoco_circuit::variation::MismatchField::ideal(geom.rows(), geom.cols()),
    )
    .expect("valid");

    // Foreground sweep: inputs 0..=255, observe normalized CB voltage.
    let mut points = Vec::new();
    for code in (0..=255u32).step_by(5) {
        let out = array.compute_vmm(&vec![code; 128]).expect("valid");
        let ideal = geom.dot_to_voltage(128.0 * (255 * code) as f64).value() / yoco_circuit::VDD;
        points.push((ideal, out.cb_voltages[0].value() / yoco_circuit::VDD));
    }
    let cal = DigitalCalibration::fit(&points);

    // Corrected worst-case error beats uncorrected by at least 5x.
    let mut before = 0.0f64;
    let mut after = 0.0f64;
    for code in (0..=255u32).step_by(3) {
        let out = array.compute_vmm(&vec![code; 128]).expect("valid");
        let ideal = geom.dot_to_voltage(128.0 * (255 * code) as f64).value() / yoco_circuit::VDD;
        let raw = out.cb_voltages[0].value() / yoco_circuit::VDD;
        before = before.max((raw - ideal).abs());
        after = after.max((cal.correct(raw) - ideal).abs());
    }
    assert!(after < before / 5.0, "before {before}, after {after}");
}

/// A Monte-Carlo corner sweep: the accuracy experiment's MAC surrogate
/// stays usable (bounded error) at every corner, and TT@25 °C is at least
/// as good as the hot slow corner.
#[test]
fn corner_sweep_is_ordered() {
    let tt = MacErrorModel::from_noise(&noise_at(ProcessCorner::Tt, 25.0), 128)
        .peak_deterministic_error();
    let ss_hot = MacErrorModel::from_noise(&noise_at(ProcessCorner::Ss, 125.0), 128)
        .peak_deterministic_error();
    assert!(tt <= ss_hot);
    assert!(ss_hot < 0.03);
}

/// Fault tolerance: the error from a few defects is within the noise floor;
/// heavy defect densities visibly degrade.
#[test]
fn fault_density_sweep() {
    let geom = ArrayGeometry::yoco_default();
    let light = random_campaign(geom, 3, 3, 2024);
    let heavy = random_campaign(geom, 128, 3, 2024);
    assert!(light.mean_error < 0.005, "light {}", light.mean_error);
    assert!(heavy.mean_error > light.mean_error);
}

/// Stuck-at injection is exact: re-injecting the same value is idempotent.
#[test]
fn fault_injection_is_idempotent() {
    let geom = ArrayGeometry::new(8, 4, 4, 4).expect("valid");
    let weights = vec![vec![5u32; 4]; 8];
    let array = DetailedArray::new(geom, &weights).expect("valid");
    let f = [Fault::StuckAtOne { row: 1, col: 2 }];
    let once = yoco_circuit::faults::inject(&array, &f).expect("ok");
    let twice = yoco_circuit::faults::inject(&once, &f).expect("ok");
    assert_eq!(once, twice);
}

/// Placement + decode round trip: a model that fits one chip decodes with
/// SRAM-cached KV at orders-of-magnitude lower write cost than ReRAM.
#[test]
fn placement_and_decode_compose() {
    let config = YocoConfig::paper_default();
    let model = models::qdqbert();
    let plan = plan_placement(&config, &model.workloads());
    assert!(plan.fits_one_chip());
    let decode = decode_attention_layer(&config, 768, 128);
    assert!(decode.kv_write_saving() > 100.0);
    assert!(decode.reram_wear_fraction > 0.0);
}

/// Scheduling a real model hides some transfer time and yields a sane
/// power figure.
#[test]
fn chip_schedule_on_vgg16() {
    let chip = YocoChip::paper_default();
    let model = models::vgg16();
    let (sched, power) = chip.schedule_model(&model.workloads());
    assert!(sched.double_buffered_ns <= sched.serial_ns);
    assert!(
        power.total_w() > 0.1 && power.total_w() < 30.0,
        "{} W",
        power.total_w()
    );
}

/// Wear leveling across the 32 ReRAM slots of a SIMA cluster extends the
/// rated rewrite budget 32x.
#[test]
fn wear_leveling_extends_sima_life() {
    let mut rr = WearLeveledCluster::sima_default(WearPolicy::RoundRobin);
    let fixed = WearLeveledCluster::sima_default(WearPolicy::Fixed);
    assert_eq!(rr.rated_rewrites(), 32 * fixed.rated_rewrites());
    // Slots rotate.
    let a = rr.rewrite().expect("ok");
    let b = rr.rewrite().expect("ok");
    assert_ne!(a, b);
}
