//! Cross-crate property tests.

use proptest::prelude::*;
use yoco::YocoChip;
use yoco_arch::accelerator::Accelerator;
use yoco_arch::workload::MatmulWorkload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chip evaluation is monotone: strictly growing any GEMM dimension
    /// never reduces energy.
    #[test]
    fn chip_energy_is_monotone(m in 1u64..256, k in 1u64..4096, n in 1u64..1024) {
        let chip = YocoChip::paper_default();
        let base = chip.evaluate(&MatmulWorkload::new("w", m, k, n));
        let more_m = chip.evaluate(&MatmulWorkload::new("w", m * 2, k, n));
        prop_assert!(more_m.energy_pj >= base.energy_pj * 0.999);
        let more_k = chip.evaluate(&MatmulWorkload::new("w", m, k * 2, n));
        prop_assert!(more_k.energy_pj >= base.energy_pj * 0.999);
        let more_n = chip.evaluate(&MatmulWorkload::new("w", m, k, n * 2));
        prop_assert!(more_n.energy_pj >= base.energy_pj * 0.999);
    }

    /// Energy efficiency never exceeds the physical peak of the IMA design
    /// point, for any workload shape.
    #[test]
    fn chip_never_beats_its_peak(m in 1u64..512, k in 1u64..8192, n in 1u64..2048) {
        let chip = YocoChip::paper_default();
        let peak = chip.peak_vmm_cost().tops_per_watt();
        let c = chip.evaluate(&MatmulWorkload::new("w", m, k, n));
        prop_assert!(c.tops_per_watt() <= peak * 1.001,
            "EE {} exceeds peak {}", c.tops_per_watt(), peak);
    }

    /// The mapper conserves work: every accelerator reports exactly the
    /// GEMM's op count regardless of blocking.
    #[test]
    fn ops_are_conserved(m in 1u64..128, k in 1u64..4096, n in 1u64..512) {
        let w = MatmulWorkload::new("w", m, k, n);
        let chip = YocoChip::paper_default();
        prop_assert_eq!(chip.evaluate(&w).ops, 2 * m * k * n);
        let isaac = yoco_baselines::isaac::isaac();
        prop_assert_eq!(isaac.evaluate(&w).ops, 2 * m * k * n);
    }

    /// Quantize/dequantize round trips stay within half a quantization step
    /// per element (cross-crate: nn quantizer feeding the analog range).
    #[test]
    fn quantization_round_trip(vals in prop::collection::vec(-4.0f32..4.0, 1..64)) {
        prop_assume!(vals.iter().any(|v| *v != 0.0));
        let m = yoco_nn::Matrix::from_vec(1, vals.len(), vals.clone()).expect("sized");
        let q = yoco_nn::quantize::QuantizedMatrix::quantize(&m).expect("nonzero");
        let back = q.dequantize();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= q.scale / 2.0 + 1e-6);
        }
    }

    /// The analog engine's signed recovery is exact when the error model is
    /// ideal, regardless of block splitting.
    #[test]
    fn ideal_analog_engine_is_exact(seed in 0u64..500, k in 1usize..300) {
        use rand::{Rng, SeedableRng};
        use yoco_nn::inference::{AnalogEngine, MatvecEngine};
        use yoco_nn::quantize::{dot_signed, QuantizedMatrix, QuantizedVector};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let w: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        prop_assume!(w.iter().any(|v| *v != 0.0));
        let m = yoco_nn::Matrix::from_vec(1, k, w).expect("sized");
        let q = QuantizedMatrix::quantize(&m).expect("nonzero");
        let x: Vec<f32> = (0..k).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let qx = QuantizedVector::quantize(&x).expect("finite");
        let mut engine = AnalogEngine::ideal(64, 0);
        let got = engine.matvec(&q, &qx)[0];
        let want = dot_signed(q.row(0), &qx.data) as f64;
        prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
    }
}
