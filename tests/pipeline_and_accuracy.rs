//! Integration tests for the attention pipeline (Fig 10) and the accuracy
//! experiment (Fig 6f), spanning core, nn, and circuit crates.

use yoco::{AttentionDims, AttentionPipeline, YocoConfig};

/// Fig 10 shape: each of the five transformers speeds up within the paper's
/// band and the geomean is near 2.3x.
#[test]
fn fig10_band() {
    let pipeline = AttentionPipeline::new(YocoConfig::paper_default());
    let dims = [
        AttentionDims {
            seq: 1024,
            d_model: 1280,
            heads: 20,
        },
        AttentionDims {
            seq: 128,
            d_model: 512,
            heads: 4,
        },
        AttentionDims {
            seq: 128,
            d_model: 768,
            heads: 12,
        },
        AttentionDims {
            seq: 197,
            d_model: 768,
            heads: 12,
        },
        AttentionDims {
            seq: 2048,
            d_model: 4096,
            heads: 32,
        },
    ];
    let speedups: Vec<f64> = dims
        .iter()
        .map(|d| pipeline.simulate(d).speedup())
        .collect();
    for s in &speedups {
        assert!(*s > 1.4 && *s < 4.2, "speedup {s}");
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / 5.0).exp();
    assert!((geomean - 2.33).abs() < 0.7, "geomean {geomean}");
}

/// The pipeline speedup grows with sequence length until the bottleneck
/// stage saturates.
#[test]
fn pipeline_speedup_is_stable_across_sequence_lengths() {
    let pipeline = AttentionPipeline::new(YocoConfig::paper_default());
    let mut last = 0.0;
    for seq in [32, 128, 512, 2048] {
        let r = pipeline.simulate(&AttentionDims {
            seq,
            d_model: 1024,
            heads: 16,
        });
        assert!(r.speedup() > 1.0);
        last = r.speedup();
    }
    assert!(last > 1.5);
}

/// Fig 6f: the analog accuracy loss stays inside the paper's bounds on all
/// six stand-in benchmarks.
#[test]
fn fig6f_accuracy_bounds() {
    let standins = yoco_nn::standins::fig6f_standins(2025).expect("training succeeds");
    assert_eq!(standins.len(), 6);
    let mut cnn = 0;
    let mut tf = 0;
    for s in &standins {
        let f = s.accuracy_f32();
        let a = s.accuracy_analog(7);
        let loss = f - a;
        match s.class {
            yoco_nn::ModelClass::Cnn => {
                cnn += 1;
                assert!(f > 0.97, "{}: weak baseline {f}", s.name);
                assert!(loss < 0.005, "{}: CNN loss {loss}", s.name);
            }
            yoco_nn::ModelClass::Transformer => {
                tf += 1;
                assert!(f > 0.95, "{}: weak baseline {f}", s.name);
                assert!(loss < 0.0061, "{}: transformer loss {loss}", s.name);
            }
        }
    }
    assert_eq!(cnn, 4);
    assert_eq!(tf, 2);
}

/// The streaming attention used by the pipeline matches exact attention
/// through the cross-crate public API.
#[test]
fn streaming_attention_equivalence() {
    use rand::{Rng, SeedableRng};
    use yoco_nn::attention::{exact_attention, streaming_attention};
    use yoco_nn::Matrix;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
    let mut mk = |seed_off: u64| {
        let _ = seed_off;
        let data: Vec<f32> = (0..24 * 8).map(|_| rng.gen_range(-2.0..2.0)).collect();
        Matrix::from_vec(24, 8, data).expect("sized")
    };
    let q = mk(0);
    let k = mk(1);
    let v = mk(2);
    let a = exact_attention(&q, &k, &v, true).expect("shapes ok");
    let b = streaming_attention(&q, &k, &v).expect("shapes ok");
    for i in 0..24 {
        for c in 0..8 {
            assert!((a.get(i, c) - b.get(i, c)).abs() < 1e-4);
        }
    }
}
