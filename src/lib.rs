//! Umbrella crate for the YOCO reproduction workspace.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! directories required by the project layout. All functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`yoco`] — the YOCO accelerator (IMA / Tile / Chip, attention pipeline)
//! * [`yoco_circuit`] — analog in-charge computing substrate
//! * [`yoco_mem`] — SRAM / ReRAM / eDRAM memory models
//! * [`yoco_arch`] — architecture cost framework and mapper
//! * [`yoco_nn`] — DNN workload substrate and int8 inference
//! * [`yoco_baselines`] — ISAAC / RAELLA / TIMELY baselines and prior circuits

pub use yoco;
pub use yoco_arch;
pub use yoco_baselines;
pub use yoco_circuit;
pub use yoco_mem;
pub use yoco_nn;
