//! Offline stand-in for `proptest`, covering this workspace's usage:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! range and tuple strategies, `prop_map`, `prop::collection::vec`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with its message immediately) and seeds are deterministic per test name
//! (override the case count with `PROPTEST_CASES`).

pub mod strategy;

pub use strategy::{Just, Map, Strategy, VecStrategy};

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG threaded through strategies.
pub type TestRng = ChaCha12Rng;

/// Deterministic per-test RNG (FNV-1a of the test name as seed).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Everything the `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop` (module of strategy constructors).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::strategy::vec;
        }
        /// `Option` strategies.
        pub mod option {
            pub use crate::strategy::option_of as of;
        }
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(1024);
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), __accepted, __config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __accepted, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
