//! Value-generation strategies: the generation half of proptest's
//! `Strategy`, without shrinking.

use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling; panics after
    /// too many consecutive rejections).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_filter` adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples");
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Strategy for `Vec<T>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Length specifications accepted by [`vec`].
pub trait IntoLenRange {
    /// Converts to a half-open range.
    fn into_len_range(self) -> Range<usize>;
}

impl IntoLenRange for Range<usize> {
    fn into_len_range(self) -> Range<usize> {
        self
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn into_len_range(self) -> Range<usize> {
        let (lo, hi) = self.into_inner();
        lo..hi + 1
    }
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> Range<usize> {
        self..self + 1
    }
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into_len_range(),
    }
}

/// Strategy for `Option<T>`: `None` for roughly one case in four,
/// matching the real crate's default `prop::option::of` weighting.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u8..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(element)`.
pub fn option_of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { inner: element }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = test_rng("bounds");
        let s = vec(0.5f64..4.0, 1..64);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|x| (0.5..4.0).contains(x)));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = test_rng("map");
        let s = (1u32..10, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1.0..11.0).contains(&v));
        }
    }
}
