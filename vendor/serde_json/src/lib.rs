//! Offline stand-in for `serde_json`: JSON text ⇄ [`serde::Value`].
//!
//! Covers the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`, and the [`Value`] type itself.
//! Matches `serde_json` conventions where observable: 2-space pretty
//! indentation, non-finite floats as `null`, struct fields in declaration
//! order.

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON error (serialization or parse).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty JSON text (2-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn emit_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1e15 {
                // Keep the float-ness visible, like serde_json ("1.0").
                out.push_str(&format!("{v:.1}"));
            } else {
                // Rust's shortest round-trip formatting.
                out.push_str(&v.to_string());
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    /// Reads 4 hex digits starting at `at` (does not advance `pos`).
    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
            16,
        )
        .map_err(|e| Error::new(e.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: combine with the low
                                // surrogate that must follow.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::new("unpaired surrogate escape"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate escape"));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let src = r#"{"a": 1, "b": [1.5, -2, "x\n", null, true], "c": {"d": []}}"#;
        let v: Value = parse_value(src).unwrap();
        let emitted = to_string(&v).unwrap();
        let again: Value = parse_value(&emitted).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_formatting_is_stable() {
        let v = parse_value(r#"{"k": [1, 2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn surrogate_pair_escapes_combine() {
        let v: Value = parse_value(r#""bert\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::String("bert\u{1F600}".to_owned()));
        assert!(parse_value(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(
            parse_value(r#""\ud83d\u0041""#).is_err(),
            "bad low surrogate"
        );
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v, Value::Number(Number::PosInt(u64::MAX)));
        assert_eq!(to_string(&v).unwrap(), "18446744073709551615");
    }
}
