//! Offline stand-in for `serde_derive`.
//!
//! Parses the item token stream by hand (no `syn`/`quote` available in this
//! environment) and emits `serde::Serialize` / `serde::Deserialize` impls
//! against the value-based shim in `vendor/serde`.
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Vec<Field>),
    /// Tuple struct with N fields. N == 1 serializes transparently
    /// (serde's newtype behavior), N > 1 as an array.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token stream")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body = g.stream();
            let kind = match keyword.as_str() {
                "struct" => ItemKind::Struct(parse_named_fields(body)?),
                "enum" => ItemKind::Enum(parse_variants(body)?),
                other => return Err(format!("serde_derive: cannot derive for `{other}` items")),
            };
            Ok(Item { name, kind })
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
        {
            Ok(Item {
                name,
                kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
            })
        }
        other => Err(format!("serde_derive: expected item body, got {other:?}")),
    }
}

/// Counts top-level comma-separated fields in a paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let inner: Vec<TokenTree> = stream.into_iter().collect();
    if inner.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &inner {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    if matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Skips `#[...]` attributes (incl. doc comments) and `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive: expected `:`, got {other:?}")),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        fields.push(Field { name });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantData::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut count = if inner.is_empty() { 0 } else { 1 };
                let mut depth = 0i32;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
                        _ => {}
                    }
                }
                // Tolerate a trailing comma inside the parens.
                if matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    count -= 1;
                }
                i += 1;
                VariantData::Tuple(count)
            }
            _ => VariantData::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, data });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert({n:?}, ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)\n");
            s
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)\n".to_owned(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])\n", elems.join(", "))
        }
        ItemKind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_owned()),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_owned()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vn:?}, {payload});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantData::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert({n:?}, ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vn:?}, ::serde::Value::Object(__fm));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::ty({name:?}, \"object\"))?;\n\
                 ::core::result::Result::Ok(Self {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{n}: ::serde::from_field(__obj, {name:?}, {n:?})?,\n",
                    n = f.name
                ));
            }
            s.push_str("})\n");
            s
        }
        ItemKind::TupleStruct(1) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))\n".to_owned()
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::ty({name:?}, \"array\"))?;\n\
                 if __a.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::ty({name:?}, \"array of matching arity\")); }}\n\
                 ::core::result::Result::Ok(Self({elems}))\n",
                elems = elems.join(", "),
            )
        }
        ItemKind::Enum(variants) => {
            let mut s =
                String::from("match __v {\n::serde::Value::String(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.data, VariantData::Unit) {
                    s.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            s.push_str(&format!(
                "__other => ::core::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}},\n"
            ));
            s.push_str("::serde::Value::Object(__m) => {\n");
            s.push_str(
                "let (__tag, __payload) = __m.iter().next().map(|(k, v)| (k.as_str(), v))\
                 .ok_or_else(|| ::serde::Error::custom(\"empty enum object\"))?;\n",
            );
            s.push_str("match __tag {\n");
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => s.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantData::Tuple(n) => {
                        if *n == 1 {
                            s.push_str(&format!(
                                "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                                .collect();
                            s.push_str(&format!(
                                "{vn:?} => {{\n\
                                 let __a = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::ty({name:?}, \"array payload\"))?;\n\
                                 if __a.len() != {n} {{ return ::core::result::Result::Err(\
                                 ::serde::Error::ty({name:?}, \"payload of matching arity\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                                elems = elems.join(", "),
                            ));
                        }
                    }
                    VariantData::Struct(fields) => {
                        let mut inner = format!(
                            "let __fm = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::ty({name:?}, \"object payload\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{n}: ::serde::from_field(__fm, {name:?}, {n:?})?,\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("})\n");
                        s.push_str(&format!("{vn:?} => {{\n{inner}}}\n"));
                    }
                }
            }
            s.push_str(&format!(
                "__other => ::core::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n"
            ));
            s.push_str(&format!(
                "_ => ::core::result::Result::Err(::serde::Error::ty({name:?}, \"string or object\")),\n}}\n"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
