//! Offline stand-in for `criterion`: same macro/API surface the workspace
//! benches use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `bench_function`, `Bencher::iter`, `black_box`), backed by a small
//! wall-clock timing loop instead of the full statistical harness.
//!
//! Honors the `--test` flag `cargo test` passes to `harness = false` bench
//! targets by running each benchmark body exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (accepted, reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-') && !a.is_empty())
            .cloned();
        Self {
            test_mode,
            filter,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Accepted for API compatibility; the shim has no sampling phase.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "bench {id:<50} {:>12.1} ns/iter ({} iters)",
                per_iter, b.iters
            );
        } else {
            println!("bench {id:<50} (ran in test mode)");
        }
        self
    }
}

/// Timing handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times the routine until the measurement budget is spent
    /// (or exactly once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.budget.is_zero() {
            black_box(routine());
            return;
        }
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark targets as a runnable function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
