//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! The real `serde` crate is unavailable in the build environment, so this
//! shim provides the same surface the workspace uses — `Serialize` /
//! `Deserialize` traits plus their derive macros — over a simple
//! self-describing [`Value`] data model. `serde_json` (also shimmed) turns
//! [`Value`] into JSON text and back.
//!
//! Design notes:
//! * `Serialize::to_value` builds a [`Value`] tree; struct fields keep
//!   declaration order (like `serde_json`'s struct serialization).
//! * Enums use serde's externally-tagged representation: unit variants are
//!   strings, data variants are single-key objects.
//! * Non-finite floats serialize to `Null`, matching `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An order-preserving string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON-style number: integer forms are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Best-effort conversion to `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact conversion to `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact conversion to `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// The self-describing data model both shims share.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The object inside, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array inside, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string inside, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The boolean inside, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected TYPE while deserializing WHAT" error.
    pub fn ty(what: &str, expected: &str) -> Self {
        Self::custom(format!("invalid type for {what}: expected {expected}"))
    }

    /// Missing-field error.
    pub fn missing(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Whether a *missing* struct field of this type is acceptable
    /// (defaulted from `Null`). Only `Option` (and `()`) opt in; floats
    /// deliberately do not, even though a present `null` deserializes to
    /// NaN for non-finite round-trips — a missing float field must stay a
    /// hard error so schema drift is caught, not papered over with NaN.
    const ACCEPTS_MISSING: bool = false;
}

/// Helper used by the derive macro: fetch + deserialize one struct field.
///
/// A missing `Option` field defaults to `None`, so hand-written scenario
/// files may spell only the knobs they override; every other type keeps
/// the hard missing-field error (see [`Deserialize::ACCEPTS_MISSING`]).
pub fn from_field<T: Deserialize>(obj: &Map, ty: &str, field: &str) -> Result<T, Error> {
    match obj.get(field) {
        Some(v) => T::from_value(v),
        None if T::ACCEPTS_MISSING => T::from_value(&Value::Null),
        None => Err(Error::missing(ty, field)),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::ty("bool", "boolean"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::ty(stringify!($t), "unsigned integer in range")),
                    _ => Err(Error::ty(stringify!($t), "number")),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::ty(stringify!($t), "integer in range")),
                    _ => Err(Error::ty(stringify!($t), "number")),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Round-trip of serialized non-finite floats.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::ty("f64", "number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::ty("String", "string"))
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. The workspace derives `Deserialize` on rows
    /// whose name fields are `&'static str` literals; round-tripping them
    /// through the result cache allocates once per distinct row, which is
    /// bounded and tiny.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::ty("&str", "string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::ty("char", "string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::ty("char", "single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    const ACCEPTS_MISSING: bool = true;

    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::ty("Vec", "array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::ty("array", "array of exact length"))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Deserialize for () {
    const ACCEPTS_MISSING: bool = true;

    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::ty("()", "null"))
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::ty("tuple", "array"))?;
                if a.len() != $len {
                    return Err(Error::ty("tuple", "array of matching length"));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
    (5, 0 A, 1 B, 2 C, 3 D, 4 E)
    (6, 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::ty("map", "object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj.iter() {
            out.insert(k.clone(), V::from_value(val)?);
        }
        Ok(out)
    }
}
