//! Offline stand-in for [mio](https://docs.rs/mio): a readiness poller
//! over raw Linux `epoll`, built directly on the syscall surface —
//! `epoll_create1` / `epoll_ctl` / `epoll_wait` plus an `eventfd` waker.
//! No `libc` crate: the handful of symbols are declared `extern "C"`
//! and resolve against the libc that `std` already links.
//!
//! The API mirrors the subset of mio the serve reactor uses, so the
//! shim can be swapped for the real crate if registry access ever
//! appears: [`Poll`], [`Registry`], [`Events`], [`Event`], [`Token`],
//! [`Interest`], [`unix::SourceFd`], and [`Waker`].
//!
//! One deliberate divergence, documented because it is load-bearing:
//! sources are registered **level-triggered** (real mio is
//! edge-triggered). Level-triggered readiness cannot lose wakeups —
//! a fd with unread bytes or writable space reports ready on every
//! `poll` — at the cost of spurious events if the consumer does not
//! drain. The reactor drains reads to `EAGAIN` and deregisters write
//! interest when its buffer empties, which is exactly the discipline
//! edge-triggered mio requires too, so the swap stays behavioral-safe.
//! The [`Waker`]'s eventfd is the one edge-triggered registration:
//! `wake` writes to the counter and nothing ever reads it back, which
//! only stays quiet between wakes under `EPOLLET` (mio's own epoll
//! waker works the same way).

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

mod sys {
    //! The raw syscall surface. Types follow the Linux x86-64 ABI that
    //! `std` itself assumes; symbols link against std's libc.

    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel ABI
    /// packs it (4-byte aligned u64 payload); elsewhere it is plain
    /// `repr(C)`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: RawFd, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// Wraps a `-1`-on-error syscall result into `io::Result`.
    pub fn cvt(ret: c_int) -> std::io::Result<c_int> {
        if ret < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

/// Identifies one registered source in the events a poll returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness a registration asks for. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (`EPOLLIN`).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes readable readiness.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes writable readiness.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    /// The union of two interests (mio's `Interest::add`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, other: Interest) -> Interest {
        self.add(other)
    }
}

/// One readiness event out of [`Poll::poll`].
#[derive(Clone, Copy)]
pub struct Event {
    raw: sys::EpollEvent,
}

impl Event {
    /// The token the ready source was registered under.
    pub fn token(&self) -> Token {
        Token(self.raw.data as usize)
    }

    fn bits(&self) -> u32 {
        self.raw.events
    }

    /// The source is readable (includes hangup/error, which read paths
    /// must observe to see the EOF or failure).
    pub fn is_readable(&self) -> bool {
        self.bits() & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// The source is writable (includes hangup/error, which write paths
    /// must observe to see the failure).
    pub fn is_writable(&self) -> bool {
        self.bits() & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer closed its write half (or the connection is fully
    /// hung up): reads will drain whatever is buffered, then EOF.
    pub fn is_read_closed(&self) -> bool {
        self.bits() & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The source is in an error state (`EPOLLERR`).
    pub fn is_error(&self) -> bool {
        self.bits() & sys::EPOLLERR != 0
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("token", &self.token())
            .field("readable", &self.is_readable())
            .field("writable", &self.is_writable())
            .field("read_closed", &self.is_read_closed())
            .field("error", &self.is_error())
            .finish()
    }
}

/// A reusable buffer of readiness events, filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event { raw: *raw })
    }

    /// Whether the last poll delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = Event;
    type IntoIter = Box<dyn Iterator<Item = Event> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

pub mod event {
    //! The registration trait, mirroring `mio::event::Source`.

    use super::{Interest, Registry, Token};
    use std::io;

    /// Anything registerable with a [`Registry`]. The only provided
    /// implementor is [`crate::unix::SourceFd`], which adapts any raw
    /// fd — exactly how mio wraps foreign fds.
    pub trait Source {
        /// Starts readiness notifications for `interests` under `token`.
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Replaces an existing registration's token/interests.
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Stops notifications for this source.
        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

pub mod unix {
    //! Unix-only adapters, mirroring `mio::unix`.

    use super::{event::Source, Interest, Registry, Token};
    use std::io;
    use std::os::fd::RawFd;

    /// Adapts a borrowed raw fd (a std `TcpListener`/`TcpStream`, a
    /// pipe…) into a registerable [`Source`]. The caller keeps
    /// ownership and must deregister before closing.
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a RawFd);

    impl Source for SourceFd<'_> {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.register_raw(*self.0, token, interests.epoll_bits())
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.reregister_raw(*self.0, token, interests.epoll_bits())
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            registry.deregister_raw(*self.0)
        }
    }
}

/// The registration handle of a [`Poll`]: shared by reference with
/// anything that needs to (de)register sources while the poll loop
/// runs elsewhere.
#[derive(Debug)]
pub struct Registry {
    epfd: OwnedFd,
}

impl Registry {
    /// Registers `source` for `interests` under `token`.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Replaces `source`'s registration.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Removes `source`'s registration.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events,
            data: token,
        };
        let event_ptr = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, event_ptr) }).map(|_| ())
    }

    fn register_raw(&self, fd: RawFd, token: Token, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token.0 as u64)
    }

    fn reregister_raw(&self, fd: RawFd, token: Token, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token.0 as u64)
    }

    fn deregister_raw(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }
}

/// The readiness poller: an epoll instance plus its [`Registry`].
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Self {
            registry: Registry {
                // SAFETY: epoll_create1 returned a fresh, owned fd.
                epfd: unsafe { OwnedFd::from_raw_fd(epfd) },
            },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or
    /// `timeout` passes (`None` blocks indefinitely), filling `events`.
    /// `EINTR` retries internally with the original timeout — callers
    /// never see spurious interrupt errors.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: std::os::raw::c_int = match timeout {
            // Round up so a sub-millisecond timeout still sleeps.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as std::os::raw::c_int,
            None => -1,
        };
        loop {
            let ret = unsafe {
                sys::epoll_wait(
                    self.registry.epfd.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            match sys::cvt(ret) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Wakes a [`Poll`] blocked in `poll` from another thread: an eventfd
/// registered edge-triggered under a caller-chosen token. `wake` is
/// cheap, async-signal-safe, and coalesces — many wakes before the
/// next poll deliver one event.
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// A waker delivering readiness on `registry` under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Self> {
        let fd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh, owned fd.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        // Edge-triggered: the counter is written and never read, so the
        // registration must fire on increments, not on level.
        registry.register_raw(
            fd.as_raw_fd(),
            token,
            sys::EPOLLIN | sys::EPOLLET | sys::EPOLLRDHUP,
        )?;
        Ok(Self { fd })
    }

    /// Signals the poller. Never blocks: the eventfd counter saturates
    /// only after 2^64-1 unanswered wakes.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret = unsafe {
            sys::write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        if ret == std::mem::size_of::<u64>() as isize {
            Ok(())
        } else {
            let err = io::Error::last_os_error();
            // A full counter (EAGAIN) still means the poller has a
            // pending wake — the purpose is served.
            if err.kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{event::Source, unix::SourceFd, Events, Interest, Poll, Token, Waker};
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    fn poll_once(poll: &mut Poll, events: &mut Events, ms: u64) {
        poll.poll(events, Some(Duration::from_millis(ms)))
            .expect("poll");
    }

    #[test]
    fn readable_fires_only_once_data_arrives_and_stays_until_drained() {
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        let mut poll = Poll::new().expect("poll");
        let mut events = Events::with_capacity(8);
        let fd = a.as_raw_fd();
        SourceFd(&fd)
            .register(poll.registry(), Token(7), Interest::READABLE)
            .expect("register");

        poll_once(&mut poll, &mut events, 50);
        assert!(events.is_empty(), "no bytes yet: no readable event");

        b.write_all(b"x").expect("peer write");
        poll_once(&mut poll, &mut events, 1000);
        let event = events.iter().next().expect("readable after peer write");
        assert_eq!(event.token(), Token(7));
        assert!(event.is_readable());
        assert!(!event.is_read_closed());

        // Level-triggered: still ready while the byte sits unread…
        poll_once(&mut poll, &mut events, 50);
        assert!(!events.is_empty(), "level-triggered readiness persists");

        // …and quiet again once drained.
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).expect("drain"), 1);
        poll_once(&mut poll, &mut events, 50);
        assert!(events.is_empty(), "drained socket is not readable");
    }

    #[test]
    fn writable_reflects_send_buffer_space_and_peer_close_reports_read_closed() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        let mut poll = Poll::new().expect("poll");
        let mut events = Events::with_capacity(8);
        let fd = a.as_raw_fd();
        SourceFd(&fd)
            .register(
                poll.registry(),
                Token(3),
                Interest::READABLE | Interest::WRITABLE,
            )
            .expect("register");

        poll_once(&mut poll, &mut events, 1000);
        let event = events.iter().next().expect("fresh socket is writable");
        assert!(event.is_writable());
        assert!(!event.is_readable());

        drop(b);
        poll_once(&mut poll, &mut events, 1000);
        let event = events.iter().next().expect("peer close is an event");
        assert!(event.is_read_closed(), "hangup reported: {event:?}");

        SourceFd(&fd)
            .deregister(poll.registry())
            .expect("deregister");
        poll_once(&mut poll, &mut events, 50);
        assert!(events.is_empty(), "deregistered source reports nothing");
    }

    #[test]
    fn reregister_swaps_token_and_interests() {
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        let mut poll = Poll::new().expect("poll");
        let mut events = Events::with_capacity(8);
        let fd = a.as_raw_fd();
        SourceFd(&fd)
            .register(poll.registry(), Token(1), Interest::WRITABLE)
            .expect("register");
        SourceFd(&fd)
            .reregister(poll.registry(), Token(2), Interest::READABLE)
            .expect("reregister");

        b.write_all(b"y").expect("peer write");
        poll_once(&mut poll, &mut events, 1000);
        let event = events.iter().next().expect("readable under new token");
        assert_eq!(event.token(), Token(2));
        assert!(event.is_readable());
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread_and_coalesces() {
        let mut poll = Poll::new().expect("poll");
        let mut events = Events::with_capacity(8);
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(9)).expect("waker"));

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            for _ in 0..5 {
                remote.wake().expect("wake");
            }
        });
        // Blocks until the remote thread wakes us (bounded for safety).
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .expect("poll");
        let event = events.iter().next().expect("waker event");
        assert_eq!(event.token(), Token(9));
        assert!(event.is_readable());
        handle.join().expect("waker thread");

        // Wakes landing after a poll returned re-arm the edge, so a
        // few more reports may follow — but with no further wakes the
        // poller must go quiet even though the counter is never read.
        let mut rearms = 0;
        while !events.is_empty() {
            rearms += 1;
            assert!(rearms < 10, "edge reports must stop without new wakes");
            poll_once(&mut poll, &mut events, 50);
        }
        poll_once(&mut poll, &mut events, 50);
        assert!(events.is_empty(), "quiet waker stays quiet");

        waker.wake().expect("wake again");
        poll_once(&mut poll, &mut events, 1000);
        assert!(!events.is_empty(), "a fresh wake fires a fresh event");
    }
}
