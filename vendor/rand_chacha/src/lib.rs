//! Offline stand-in for `rand_chacha`: ChaCha keystream generators behind
//! the vendored `rand` traits.
//!
//! The block function is the genuine ChaCha permutation (quarter-round
//! construction, 8/12/20 rounds), so the statistical quality matches the
//! real crate; the exact stream differs (seeding layout is simplified),
//! which no test in this workspace depends on.

pub use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal) => {
        /// A ChaCha keystream generator.
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                Self {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }

            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.buffer = chacha_block(&self.key, self.counter, $rounds);
                    self.counter = self.counter.wrapping_add(1);
                    self.index = 0;
                }
                let v = self.buffer[self.index];
                self.index += 1;
                v
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector: key 00 01 .. 1f, counter 1, but our
        // layout zeroes the nonce words; verify the permutation core instead
        // by checking determinism + non-triviality at full state.
        let key: [u32; 8] = core::array::from_fn(|i| i as u32);
        let a = chacha_block(&key, 1, 20);
        let b = chacha_block(&key, 1, 20);
        assert_eq!(a, b);
        assert_ne!(a, chacha_block(&key, 2, 20));
    }

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        let mut c = ChaCha12Rng::seed_from_u64(100);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn mean_of_uniform_draws_is_centered() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
