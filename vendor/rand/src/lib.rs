//! Offline stand-in for `rand`, covering this workspace's usage:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::{from_seed,
//! seed_from_u64}`, and `thread_rng()`.
//!
//! The numeric streams do not match the real `rand` crate (no test here
//! depends on exact sequences — only on determinism and uniformity), but
//! they are deterministic per seed and identical across platforms.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a slice with standard samples.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from the OS-ish entropy used by [`thread_rng`].
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// SplitMix64: seed expander and the engine behind [`thread_rng`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a 64-bit state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn entropy_seed() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(0x5EED);
    h.finish()
}

/// The per-call convenience generator.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: SplitMix64,
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A fresh pseudo-entropy-seeded generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng {
        inner: SplitMix64::new(entropy_seed()),
    }
}

/// Common RNG re-exports, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::ThreadRng;
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// The "standard" distribution (what `rng.gen::<T>()` samples).
pub trait StandardSample: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via 128-bit multiply (negligible bias-free).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SplitMix64::new(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
