//! Quickstart: build a YOCO chip, run a real charge-domain VMM through one
//! IMA, and print the headline operating point.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::{Rng, SeedableRng};
use yoco::{Ima, ImaRole, YocoChip, YocoConfig};
use yoco_arch::accelerator::Accelerator;
use yoco_arch::workload::MatmulWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Table II chip and its headline operating point.
    let chip = YocoChip::paper_default();
    let peak = chip.peak_vmm_cost();
    println!(
        "YOCO chip ({} tiles, {} IMAs, {} arrays)",
        chip.config().tiles,
        chip.config().total_imas(),
        chip.config().total_arrays()
    );
    println!(
        "peak 8-bit 1024x256 VMM: {:.2} nJ, {:.1} ns -> {:.1} TOPS/W, {:.1} TOPS",
        peak.energy.as_nano(),
        peak.latency.as_nano(),
        peak.tops_per_watt(),
        peak.tops()
    );

    // 2. A functional VMM through an actual (smaller) IMA: 2x1 arrays =
    // 256 inputs, 32 outputs, with TT-corner analog noise.
    let config = YocoConfig::builder().ima_stack(2).ima_width(1).build()?;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(42);
    let weights: Vec<Vec<u32>> = (0..256)
        .map(|_| (0..32).map(|_| rng.gen_range(0..256)).collect())
        .collect();
    let ima = Ima::new(&config, ImaRole::Static, &weights)?;
    let inputs: Vec<u32> = (0..256).map(|_| rng.gen_range(0..256)).collect();
    let codes = ima.compute_vmm(&inputs, 7)?;
    let exact: f64 = (0..256)
        .map(|r| inputs[r] as f64 * weights[r][0] as f64)
        .sum();
    println!(
        "functional VMM output[0]: code {} (exact dot {} -> expected code {})",
        codes[0],
        exact,
        ima.dot_to_code(exact)
    );

    // 3. Evaluate a transformer projection layer on the whole chip.
    let cost = chip.evaluate(&MatmulWorkload::new("bert.wq", 128, 768, 768));
    println!(
        "BERT W_Q projection on chip: {:.2} nJ, {:.0} ns, {:.1} TOPS/W",
        cost.energy_pj / 1e3,
        cost.latency_ns,
        cost.tops_per_watt()
    );
    Ok(())
}
