//! Map ResNet-18 onto the YOCO chip and compare against the ISAAC baseline,
//! layer by layer.
//!
//! ```sh
//! cargo run --release --example resnet18_inference
//! ```

use yoco::YocoChip;
use yoco_arch::accelerator::Accelerator;
use yoco_baselines::isaac::isaac;
use yoco_nn::models::resnet18;

fn main() {
    let model = resnet18();
    let workloads = model.workloads();
    let chip = YocoChip::paper_default();
    let baseline = isaac();

    println!(
        "ResNet-18: {} GEMMs, {:.2} GMACs total",
        workloads.len(),
        model.macs() as f64 / 1e9
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "layer", "MACs (M)", "yoco (uJ)", "isaac (uJ)", "EE gain"
    );
    for (idx, w) in workloads.iter().enumerate() {
        let y = chip.evaluate(w);
        let i = baseline.evaluate(w);
        if idx < 8 || w.name == "fc" {
            println!(
                "{:<22} {:>10.1} {:>12.2} {:>12.2} {:>9.1}x",
                w.name,
                w.macs() as f64 / 1e6,
                y.energy_pj / 1e6,
                i.energy_pj / 1e6,
                y.tops_per_watt() / i.tops_per_watt()
            );
        } else if idx == 8 {
            println!("{:<22} ...", "");
        }
    }

    let y = chip.evaluate_model(&model.name, &workloads);
    let i = baseline.evaluate_model(&model.name, &workloads);
    println!();
    println!(
        "whole model on YOCO : {:.1} uJ, {:.0} us, {:.1} TOPS/W, {:.1} TOPS",
        y.total.energy_pj / 1e6,
        y.total.latency_ns / 1e3,
        y.tops_per_watt(),
        y.tops()
    );
    println!(
        "whole model on ISAAC: {:.1} uJ, {:.0} us, {:.1} TOPS/W, {:.1} TOPS",
        i.total.energy_pj / 1e6,
        i.total.latency_ns / 1e3,
        i.tops_per_watt(),
        i.tops()
    );
    println!(
        "YOCO advantage: {:.1}x energy efficiency, {:.1}x throughput",
        y.tops_per_watt() / i.tops_per_watt(),
        y.tops() / i.tops()
    );
}
