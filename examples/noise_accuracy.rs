//! How much accuracy does analog computation cost? A compact version of the
//! Fig 6(f) experiment: train a stand-in classifier, then run inference
//! exactly and through YOCO's calibrated analog MAC path.
//!
//! ```sh
//! cargo run --release --example noise_accuracy
//! ```

use yoco_nn::datasets::VectorDataset;
use yoco_nn::inference::{accuracy, AnalogEngine};
use yoco_nn::train::{train_mlp, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = VectorDataset::gaussian_clusters(3000, 24, 4, 0.22, 99);
    let (train, test) = data.split(0.5);
    let mlp = train_mlp(
        &[24, 48, 4],
        &train.samples,
        &train.labels,
        &TrainConfig::default(),
    )?;

    let f32_acc = accuracy(&test.samples, &test.labels, |x| {
        mlp.predict_f32(x).unwrap_or(0)
    });
    println!("f32 inference accuracy        : {:.2} %", f32_acc * 100.0);

    // The calibrated TT-corner analog path (8-bit readout included).
    let mut engine = AnalogEngine::yoco_tt(1);
    let analog_acc = accuracy(&test.samples, &test.labels, |x| {
        mlp.predict_quantized(x, &mut engine).unwrap_or(0)
    });
    println!(
        "YOCO analog inference accuracy: {:.2} %",
        analog_acc * 100.0
    );
    println!(
        "accuracy loss                 : {:+.2} %  (paper: < 0.5 % on CNNs)",
        (f32_acc - analog_acc) * 100.0
    );

    // What if the circuit were much noisier? Scale the noise model up.
    let noisy = yoco_circuit::NoiseModel {
        readout_offset_sigma: 8.0e-3, // > 2 LSB of random offset
        charge_injection: 0.02,
        ..yoco_circuit::NoiseModel::tt_corner()
    };
    let mac = yoco_circuit::fast::MacErrorModel::from_noise(&noisy, 128).with_quantization(256);
    let mut bad_engine = AnalogEngine::new(mac, 1024, 2);
    let bad_acc = accuracy(&test.samples, &test.labels, |x| {
        mlp.predict_quantized(x, &mut bad_engine).unwrap_or(0)
    });
    println!(
        "with ~10x the analog noise    : {:.2} % ({:+.2} % loss) — why calibration matters",
        bad_acc * 100.0,
        (f32_acc - bad_acc) * 100.0
    );
    Ok(())
}
