//! Why hybrid? Quantifies the ReRAM/SRAM trade-off that motivates YOCO's
//! tile design (§III-C): density for static weights, endurance and write
//! energy for dynamic attention matrices.
//!
//! ```sh
//! cargo run --release --example hybrid_memory_tradeoff
//! ```

use yoco::{Tile, YocoConfig};
use yoco_mem::{MemoryModel, ReramArray, SramArray};

fn main() {
    let config = YocoConfig::paper_default();
    let tile = Tile::new(&config);

    println!("== density: weights resident per tile ==");
    let (dynamic, static_cap) = tile.weight_capacity(&config);
    println!("  4 DIMAs (SRAM clusters) : {dynamic:>12} 8-bit weights");
    println!("  4 SIMAs (ReRAM clusters): {static_cap:>12} 8-bit weights (4 resident sets)");

    println!();
    println!("== write path: hosting one attention K matrix (2048 x 128, 8-bit) ==");
    let bits = 2048 * 128 * 8u64;
    let (sram_pj, reram_pj) = tile.dynamic_write_comparison(bits);
    println!("  SRAM  write: {:>10.1} nJ", sram_pj / 1e3);
    println!(
        "  ReRAM write: {:>10.1} nJ  ({:.0}x more)",
        reram_pj / 1e3,
        reram_pj / sram_pj
    );
    let sram = SramArray::new(bits / 8);
    let reram = ReramArray::new(bits / 8);
    println!(
        "  write latency: SRAM {:.0} ns vs ReRAM {:.0} ns",
        sram.write_cost(bits).latency_ns,
        reram.write_cost(bits).latency_ns
    );

    println!();
    println!("== endurance: rewriting K/V every token ==");
    for rate in [1.0e3, 1.0e6, 5.0e7] {
        let secs = ReramArray::lifetime_seconds(rate);
        println!(
            "  {rate:>10.0} rewrites/s -> ReRAM cell worn out after {:>12.1} hours",
            secs / 3600.0
        );
    }
    println!("  SRAM endurance: effectively unlimited — hence DIMAs for dynamic matrices.");

    println!();
    println!("== area: bits per um^2 ==");
    let s = SramArray::new(1024);
    let r = ReramArray::new(1024);
    println!("  SRAM : {:.1} bits/um2", s.density_bits_per_um2());
    println!(
        "  ReRAM: {:.1} bits/um2 ({:.0}x denser)",
        r.density_bits_per_um2(),
        r.density_bits_per_um2() / s.density_bits_per_um2()
    );
}
