//! Token-by-token attention on YOCO: the §III-D pipeline in action.
//!
//! Functionally verifies the streaming (online-softmax) attention the
//! pipeline computes against exact attention, then reports the pipelined vs
//! layer-wise schedule for a LLaMA-class decoder layer.
//!
//! ```sh
//! cargo run --release --example llm_attention_pipeline
//! ```

use rand::{Rng, SeedableRng};
use yoco::{AttentionDims, AttentionPipeline, YocoConfig};
use yoco_nn::attention::{exact_attention, StreamingAttention};
use yoco_nn::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Functional check: the pipeline's incremental flow (running max,
    // normalizer, accumulator in eDRAM) equals exact attention.
    let (seq, d) = (16usize, 32usize);
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
    let mut rand_mat = |rows: usize| {
        let data: Vec<f32> = (0..rows * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Matrix::from_vec(rows, d, data)
    };
    let q = rand_mat(seq)?;
    let k = rand_mat(seq)?;
    let v = rand_mat(seq)?;
    let exact = exact_attention(&q, &k, &v, true)?;

    // Token-by-token, the way K-DIMA/Q-DIMA/V-DIMA process it.
    let mut worst = 0.0f32;
    for t in 0..seq {
        let mut state = StreamingAttention::new(d);
        for j in 0..=t {
            state.push(q.row(t), k.row(j), v.row(j));
        }
        let out = state.finish();
        for (c, &o) in out.iter().enumerate() {
            worst = worst.max((o - exact.get(t, c)).abs());
        }
    }
    println!("streaming vs exact attention, {seq} tokens: max |diff| = {worst:.2e}");

    // 2. Schedule comparison for a LLaMA-7B-class decoder layer.
    let pipeline = AttentionPipeline::new(YocoConfig::paper_default());
    let dims = AttentionDims {
        seq: 2048,
        d_model: 4096,
        heads: 32,
    };
    let r = pipeline.simulate(&dims);
    println!(
        "llama-7b attention layer (seq {}, d {}):",
        dims.seq, dims.d_model
    );
    println!("  layer-wise: {:.2} ms", r.layerwise_ns / 1e6);
    println!("  pipelined : {:.2} ms", r.pipelined_ns / 1e6);
    println!("  speedup   : {:.2}x", r.speedup());

    // Show where the time goes for the last token.
    let lat = pipeline.stage_latencies(&dims, dims.seq - 1);
    let names = ["qkv", "store", "scores", "exp", "buffer", "update"];
    println!("  last-token stage latencies:");
    for (n, l) in names.iter().zip(&lat) {
        println!("    {n:<7} {l:>10.1} ns");
    }
    Ok(())
}
